#include "store/snapshot.h"

#include <atomic>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <type_traits>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "store/mapped_file.h"

namespace ga::store {

// The snapshot stores arrays exactly as they sit in memory, so the scalar
// and Edge layouts are part of the format. Guard them at compile time:
// a platform where these fail needs a format revision, not silent skew.
static_assert(sizeof(VertexId) == 8 && sizeof(VertexIndex) == 8 &&
              sizeof(EdgeIndex) == 8 && sizeof(Weight) == 8);
static_assert(std::is_trivially_copyable_v<Edge>);
static_assert(sizeof(Edge) == 24, "Edge must pack to 24 bytes (no padding)");
static_assert(offsetof(Edge, source) == 0 && offsetof(Edge, target) == 8 &&
              offsetof(Edge, weight) == 16);

std::string_view SectionKindName(SectionKind kind) {
  switch (kind) {
    case SectionKind::kExternalIds: return "external_ids";
    case SectionKind::kEdges: return "edges";
    case SectionKind::kOutOffsets: return "out_offsets";
    case SectionKind::kOutTargets: return "out_targets";
    case SectionKind::kOutWeights: return "out_weights";
    case SectionKind::kInOffsets: return "in_offsets";
    case SectionKind::kInSources: return "in_sources";
    case SectionKind::kInWeights: return "in_weights";
    case SectionKind::kChainInfo: return "chain_info";
    case SectionKind::kDeltaOps: return "delta_ops";
  }
  return "unknown";
}

std::uint64_t Fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

constexpr std::uint32_t kMaxSections = 10;

std::uint64_t AlignUp(std::uint64_t value) {
  return (value + kSectionAlignment - 1) / kSectionAlignment *
         kSectionAlignment;
}

// Header checksum: FNV over the header with its checksum field zeroed,
// chained over the section table.
std::uint64_t HeaderChecksum(SnapshotHeader header,
                             const SectionEntry* table,
                             std::uint32_t section_count) {
  header.header_checksum = 0;
  const std::uint64_t over_header = Fnv1a64(&header, sizeof(header));
  return Fnv1a64(table, sizeof(SectionEntry) * section_count, over_header);
}

struct SectionPayload {
  SectionKind kind;
  const void* data;
  std::uint64_t size_bytes;
};

Status IoErrorAt(const std::string& path, const std::string& what) {
  return Status::IoError(path + ": " + what);
}

std::uint64_t ProcessToken() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(::getpid());
#else
  static const std::uint64_t token = std::random_device{}();
  return token;
#endif
}

// ---------------------------------------------------------------------
// Reading

struct SnapshotView {
  const std::byte* base = nullptr;
  std::uint64_t file_size = 0;
  SnapshotHeader header;  // copied out of the mapping
  std::span<const SectionEntry> table;
};

Result<SnapshotView> OpenView(const MappedFile& file,
                              const std::string& path) {
  SnapshotView view;
  view.base = file.data();
  view.file_size = file.size();
  if (view.file_size < sizeof(SnapshotHeader)) {
    return IoErrorAt(path, "truncated snapshot (file smaller than header)");
  }
  std::memcpy(&view.header, view.base, sizeof(SnapshotHeader));
  if (std::memcmp(view.header.magic, kSnapshotMagic,
                  sizeof(kSnapshotMagic)) != 0) {
    return IoErrorAt(path, "not a .gab snapshot (bad magic)");
  }
  if (view.header.version != kSnapshotVersion) {
    return IoErrorAt(path, "unsupported snapshot version " +
                               std::to_string(view.header.version) +
                               " (this build reads version " +
                               std::to_string(kSnapshotVersion) + ")");
  }
  if (view.header.endian_tag != kEndianTag) {
    return IoErrorAt(path,
                     "snapshot was written on a foreign-endian host");
  }
  if (view.header.section_count == 0 ||
      view.header.section_count > kMaxSections) {
    return IoErrorAt(path, "implausible section count " +
                               std::to_string(view.header.section_count));
  }
  const std::uint64_t table_end =
      sizeof(SnapshotHeader) +
      sizeof(SectionEntry) * std::uint64_t{view.header.section_count};
  if (table_end > view.file_size) {
    return IoErrorAt(path, "truncated snapshot (section table cut off)");
  }
  view.table = {reinterpret_cast<const SectionEntry*>(
                    view.base + sizeof(SnapshotHeader)),
                view.header.section_count};
  if (HeaderChecksum(view.header, view.table.data(),
                     view.header.section_count) !=
      view.header.header_checksum) {
    return IoErrorAt(path, "header checksum mismatch (corrupt snapshot)");
  }
  for (const SectionEntry& entry : view.table) {
    if (entry.offset % kSectionAlignment != 0) {
      return IoErrorAt(path, "misaligned section offset");
    }
    if (entry.offset > view.file_size ||
        entry.size_bytes > view.file_size - entry.offset) {
      return IoErrorAt(path,
                       "truncated snapshot (section exceeds file size)");
    }
  }
  return view;
}

Result<const SectionEntry*> RequireSection(const SnapshotView& view,
                                           const std::string& path,
                                           SectionKind kind,
                                           std::uint64_t expected_bytes) {
  const SectionEntry* found = nullptr;
  for (const SectionEntry& entry : view.table) {
    if (entry.kind != static_cast<std::uint32_t>(kind)) continue;
    if (found != nullptr) {
      return IoErrorAt(path, "duplicate section " +
                                 std::string(SectionKindName(kind)));
    }
    found = &entry;
  }
  if (found == nullptr) {
    return IoErrorAt(path, "missing section " +
                               std::string(SectionKindName(kind)));
  }
  if (found->size_bytes != expected_bytes) {
    return IoErrorAt(path, "section " + std::string(SectionKindName(kind)) +
                               " has " + std::to_string(found->size_bytes) +
                               " bytes, expected " +
                               std::to_string(expected_bytes));
  }
  return found;
}

template <typename T>
std::span<const T> SectionSpan(const SnapshotView& view,
                               const SectionEntry& entry) {
  return {reinterpret_cast<const T*>(view.base + entry.offset),
          static_cast<std::size_t>(entry.size_bytes / sizeof(T))};
}

Status VerifySectionChecksums(const SnapshotView& view,
                              const std::string& path) {
  for (const SectionEntry& entry : view.table) {
    if (Fnv1a64(view.base + entry.offset, entry.size_bytes) !=
        entry.checksum) {
      return IoErrorAt(
          path, "checksum mismatch in section " +
                    std::string(SectionKindName(
                        static_cast<SectionKind>(entry.kind))) +
                    " (corrupt snapshot)");
    }
  }
  return Status::Ok();
}

// Structural invariants of the arrays themselves (beyond checksums):
// everything an algorithm would index with must be in range.
Status CheckStructure(const Graph& graph, const std::string& path) {
  const VertexIndex n = graph.num_vertices();
  const EdgeIndex m = graph.num_edges();
  const auto external_ids = graph.external_ids();
  for (VertexIndex v = 0; v + 1 < n; ++v) {
    if (external_ids[v] >= external_ids[v + 1]) {
      return IoErrorAt(path, "external ids not strictly ascending");
    }
  }
  auto check_adjacency = [&](std::span<const EdgeIndex> offsets,
                             std::span<const VertexIndex> neighbors,
                             std::string_view what) -> Status {
    if (offsets.front() != 0 ||
        offsets.back() != static_cast<EdgeIndex>(neighbors.size())) {
      return IoErrorAt(path, std::string(what) + " offsets do not cover " +
                                 "the adjacency array");
    }
    for (VertexIndex v = 0; v < n; ++v) {
      if (offsets[v] > offsets[v + 1]) {
        return IoErrorAt(path, std::string(what) + " offsets not monotone");
      }
    }
    for (VertexIndex neighbor : neighbors) {
      if (neighbor < 0 || neighbor >= n) {
        return IoErrorAt(path, std::string(what) + " neighbour out of range");
      }
    }
    return Status::Ok();
  };
  GA_RETURN_IF_ERROR(
      check_adjacency(graph.out_offsets(), graph.out_targets(), "out"));
  if (graph.is_directed()) {
    GA_RETURN_IF_ERROR(
        check_adjacency(graph.in_offsets(), graph.in_sources(), "in"));
  }
  const auto edges = graph.edges();
  for (EdgeIndex e = 0; e < m; ++e) {
    const Edge& edge = edges[e];
    if (edge.source < 0 || edge.source >= n || edge.target < 0 ||
        edge.target >= n) {
      return IoErrorAt(path, "edge endpoint out of range");
    }
    if (edge.source == edge.target) {
      return IoErrorAt(path, "self-loop in canonical edge array");
    }
    if (!graph.is_directed() && edge.source > edge.target) {
      return IoErrorAt(path, "undirected edge not canonically oriented");
    }
    if (e > 0 && !(edges[e - 1].source < edge.source ||
                   (edges[e - 1].source == edge.source &&
                    edges[e - 1].target < edge.target))) {
      return IoErrorAt(path, "canonical edge array not strictly sorted");
    }
  }
  EdgeIndex max_out = 0;
  EdgeIndex max_in = 0;
  for (VertexIndex v = 0; v < n; ++v) {
    max_out = std::max(max_out, graph.OutDegree(v));
    max_in = std::max(max_in, graph.InDegree(v));
  }
  if (max_out != graph.max_out_degree() || max_in != graph.max_in_degree()) {
    return IoErrorAt(path, "stored max degree does not match adjacency");
  }
  return Status::Ok();
}

}  // namespace

Status WriteSnapshot(const Graph& graph, const std::string& path) {
  return WriteSnapshot(graph, path, {});
}

Status WriteSnapshot(const Graph& graph, const std::string& path,
                     std::span<const ExtraSection> extra_sections) {
  const std::uint64_t n = static_cast<std::uint64_t>(graph.num_vertices());
  const std::uint64_t m = static_cast<std::uint64_t>(graph.num_edges());
  const bool directed = graph.is_directed();
  const bool weighted = graph.is_weighted();

  std::vector<SectionPayload> payloads;
  auto add = [&payloads](SectionKind kind, const auto& span) {
    payloads.push_back(
        {kind, span.data(), static_cast<std::uint64_t>(span.size_bytes())});
  };
  add(SectionKind::kExternalIds, graph.external_ids());
  add(SectionKind::kEdges, graph.edges());
  add(SectionKind::kOutOffsets, graph.out_offsets());
  add(SectionKind::kOutTargets, graph.out_targets());
  if (weighted) add(SectionKind::kOutWeights, graph.out_weights());
  if (directed) {
    add(SectionKind::kInOffsets, graph.in_offsets());
    add(SectionKind::kInSources, graph.in_sources());
    if (weighted) add(SectionKind::kInWeights, graph.in_weights());
  }
  for (const ExtraSection& extra : extra_sections) {
    payloads.push_back({extra.kind, extra.data, extra.size_bytes});
  }
  if (payloads.size() > kMaxSections) {
    return Status::InvalidArgument(
        path + ": too many snapshot sections (" +
        std::to_string(payloads.size()) + " > " +
        std::to_string(kMaxSections) + ")");
  }

  SnapshotHeader header{};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.version = kSnapshotVersion;
  header.endian_tag = kEndianTag;
  header.flags = (directed ? kFlagDirected : 0) |
                 (weighted ? kFlagWeighted : 0);
  header.section_count = static_cast<std::uint32_t>(payloads.size());
  header.num_vertices = n;
  header.num_edges = m;
  header.max_out_degree =
      static_cast<std::uint64_t>(graph.max_out_degree());
  header.max_in_degree = static_cast<std::uint64_t>(graph.max_in_degree());

  std::vector<SectionEntry> table(payloads.size());
  std::uint64_t offset = AlignUp(sizeof(SnapshotHeader) +
                                 sizeof(SectionEntry) * payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    table[i].kind = static_cast<std::uint32_t>(payloads[i].kind);
    table[i].reserved = 0;
    table[i].offset = offset;
    table[i].size_bytes = payloads[i].size_bytes;
    table[i].checksum = Fnv1a64(payloads[i].data, payloads[i].size_bytes);
    offset = AlignUp(offset + payloads[i].size_bytes);
  }
  header.header_checksum =
      HeaderChecksum(header, table.data(), header.section_count);

  // Write to a sibling temp file and rename over `path`: a reader never
  // sees a half-written snapshot, and a crashed writer leaves the old
  // file intact. The temp name is unique per process and call so
  // concurrent writers of the same key (e.g. two CI jobs sharing a
  // dataset cache) cannot truncate each other mid-write — both rename
  // complete files, last one wins.
  static std::atomic<std::uint64_t> write_sequence{0};
  const std::string temp_path =
      path + ".tmp." + std::to_string(ProcessToken()) + "." +
      std::to_string(write_sequence.fetch_add(1));
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    if (!out) return IoErrorAt(temp_path, "cannot open for writing");
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(table.data()),
              static_cast<std::streamsize>(sizeof(SectionEntry) *
                                           table.size()));
    std::uint64_t written =
        sizeof(SnapshotHeader) + sizeof(SectionEntry) * table.size();
    static constexpr char kZeros[kSectionAlignment] = {};
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      out.write(kZeros,
                static_cast<std::streamsize>(table[i].offset - written));
      out.write(static_cast<const char*>(payloads[i].data),
                static_cast<std::streamsize>(payloads[i].size_bytes));
      written = table[i].offset + payloads[i].size_bytes;
    }
    if (!out) {
      out.close();
      std::error_code cleanup;
      std::filesystem::remove(temp_path, cleanup);
      return IoErrorAt(temp_path, "write failed");
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp_path, path, ec);
  if (ec) {
    std::filesystem::remove(temp_path, ec);
    return IoErrorAt(path, "cannot rename snapshot into place");
  }
  return Status::Ok();
}

Result<Graph> ReadSnapshot(const std::string& path,
                           const ReadOptions& options) {
  GA_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  // The mapping moves into the keep-alive handle first; its base pointer
  // is stable across the move, so the views bound below stay valid.
  auto backing = std::make_shared<MappedFile>(std::move(file));
  GA_ASSIGN_OR_RETURN(SnapshotView view, OpenView(*backing, path));
  if (options.verify_checksums) {
    GA_RETURN_IF_ERROR(VerifySectionChecksums(view, path));
  }

  const std::uint64_t n = view.header.num_vertices;
  const std::uint64_t m = view.header.num_edges;
  const bool directed = (view.header.flags & kFlagDirected) != 0;
  const bool weighted = (view.header.flags & kFlagWeighted) != 0;
  // Self-loops are dropped at build time, so the adjacency entry count is
  // exactly m (directed) or 2m (undirected both directions).
  const std::uint64_t adjacency = directed ? m : 2 * m;

  GraphParts parts;
  parts.directedness =
      directed ? Directedness::kDirected : Directedness::kUndirected;
  parts.weighted = weighted;
  parts.max_out_degree = static_cast<EdgeIndex>(view.header.max_out_degree);
  parts.max_in_degree = static_cast<EdgeIndex>(view.header.max_in_degree);

  GA_ASSIGN_OR_RETURN(
      const SectionEntry* section,
      RequireSection(view, path, SectionKind::kExternalIds, n * 8));
  parts.external_ids = SectionSpan<VertexId>(view, *section);
  GA_ASSIGN_OR_RETURN(section,
                      RequireSection(view, path, SectionKind::kEdges,
                                     m * sizeof(Edge)));
  parts.edges = SectionSpan<Edge>(view, *section);
  GA_ASSIGN_OR_RETURN(section, RequireSection(view, path,
                                              SectionKind::kOutOffsets,
                                              (n + 1) * 8));
  parts.out_offsets = SectionSpan<EdgeIndex>(view, *section);
  GA_ASSIGN_OR_RETURN(section, RequireSection(view, path,
                                              SectionKind::kOutTargets,
                                              adjacency * 8));
  parts.out_targets = SectionSpan<VertexIndex>(view, *section);
  if (weighted) {
    GA_ASSIGN_OR_RETURN(section, RequireSection(view, path,
                                                SectionKind::kOutWeights,
                                                adjacency * 8));
    parts.out_weights = SectionSpan<Weight>(view, *section);
  }
  if (directed) {
    GA_ASSIGN_OR_RETURN(section, RequireSection(view, path,
                                                SectionKind::kInOffsets,
                                                (n + 1) * 8));
    parts.in_offsets = SectionSpan<EdgeIndex>(view, *section);
    GA_ASSIGN_OR_RETURN(section, RequireSection(view, path,
                                                SectionKind::kInSources,
                                                m * 8));
    parts.in_sources = SectionSpan<VertexIndex>(view, *section);
    if (weighted) {
      GA_ASSIGN_OR_RETURN(section, RequireSection(view, path,
                                                  SectionKind::kInWeights,
                                                  m * 8));
      parts.in_weights = SectionSpan<Weight>(view, *section);
    }
  }
  Graph graph = Graph::FromParts(parts, std::move(backing));
  if (options.verify_checksums) {
    // Structural validation rides the same verify pass: checksums catch
    // accidental corruption, this catches checksum-consistent files with
    // out-of-range indices — either way a bad file is a clean Status,
    // never an out-of-bounds access later.
    GA_RETURN_IF_ERROR(CheckStructure(graph, path));
  }
  return graph;
}

Result<std::vector<std::byte>> ReadSectionPayload(const std::string& path,
                                                  SectionKind kind) {
  GA_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  GA_ASSIGN_OR_RETURN(SnapshotView view, OpenView(file, path));
  const SectionEntry* found = nullptr;
  for (const SectionEntry& entry : view.table) {
    if (entry.kind != static_cast<std::uint32_t>(kind)) continue;
    if (found != nullptr) {
      return IoErrorAt(path, "duplicate section " +
                                 std::string(SectionKindName(kind)));
    }
    found = &entry;
  }
  if (found == nullptr) {
    return Status::NotFound(path + ": no section " +
                            std::string(SectionKindName(kind)));
  }
  if (Fnv1a64(view.base + found->offset, found->size_bytes) !=
      found->checksum) {
    return IoErrorAt(path, "checksum mismatch in section " +
                               std::string(SectionKindName(kind)) +
                               " (corrupt snapshot)");
  }
  const std::byte* begin = view.base + found->offset;
  return std::vector<std::byte>(begin, begin + found->size_bytes);
}

Result<SnapshotInfo> InspectSnapshot(const std::string& path) {
  GA_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  GA_ASSIGN_OR_RETURN(SnapshotView view, OpenView(file, path));
  SnapshotInfo info;
  info.header = view.header;
  info.sections.assign(view.table.begin(), view.table.end());
  info.file_size = view.file_size;
  return info;
}

Status VerifySnapshot(const std::string& path) {
  // The default read already runs the full verify pass (checksums +
  // structure); this entry point just discards the graph.
  GA_ASSIGN_OR_RETURN(Graph graph, ReadSnapshot(path));
  (void)graph;
  return Status::Ok();
}

}  // namespace ga::store
