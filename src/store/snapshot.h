// Versioned, checksummed binary graph snapshots (the `.gab` format).
//
// A snapshot holds everything GraphBuilder::Build materialises — external
// ids, the canonical edge array, out-CSR (and in-CSC for directed graphs),
// weights, flags, max degrees — so loading never rebuilds, sorts or
// hashes anything. Layout (DESIGN.md §10):
//
//   [0,  64)  SnapshotHeader  magic "GABSNAP1", version, endian tag,
//                             flags, counts, header checksum
//   [64, ..)  section table   one 32-byte SectionEntry per section
//   ...       sections        raw little-endian arrays, each offset
//                             64-byte aligned, zero padding between
//
// Every section carries an FNV-1a 64 checksum; the header checksum covers
// the header (with its checksum field zeroed) plus the section table.
// All arrays are written exactly as they sit in memory (8-byte scalars,
// 24-byte Edge records), so a reader on a same-endianness host can bind
// Graph span views directly into the mapping — the zero-copy load path.
// Foreign-endian files are rejected via the endian tag, not translated.
#ifndef GRAPHALYTICS_STORE_SNAPSHOT_H_
#define GRAPHALYTICS_STORE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/status.h"

namespace ga::store {

inline constexpr char kSnapshotMagic[8] = {'G', 'A', 'B', 'S',
                                           'N', 'A', 'P', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
/// Written as a u32 by the creator; a reader seeing it byte-swapped knows
/// the file came from a foreign-endian host.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
/// Section payload offsets are multiples of this, so spans bound into a
/// (page-aligned) mapping are always suitably aligned and cache-friendly.
inline constexpr std::uint64_t kSectionAlignment = 64;

enum class SectionKind : std::uint32_t {
  kExternalIds = 1,  // VertexId[n]
  kEdges = 2,        // Edge[m] (24-byte records)
  kOutOffsets = 3,   // EdgeIndex[n+1]
  kOutTargets = 4,   // VertexIndex[A]  (A = adjacency entries)
  kOutWeights = 5,   // Weight[A], weighted graphs only
  kInOffsets = 6,    // EdgeIndex[n+1], directed graphs only
  kInSources = 7,    // VertexIndex[m], directed graphs only
  kInWeights = 8,    // Weight[m], directed weighted graphs only
  // Chained (mutation-epoch) snapshots only — see store/chain.h. Readers
  // that predate these kinds skip them: ReadSnapshot binds sections by
  // kind and ignores the rest.
  kChainInfo = 9,  // ChainInfoRecord (parent checksum, epoch, op count)
  kDeltaOps = 10,  // mutate::EdgeDelta[op_count] (32-byte wire records)
};

std::string_view SectionKindName(SectionKind kind);

struct SnapshotHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::uint32_t flags;  // bit0: directed, bit1: weighted
  std::uint32_t section_count;
  std::uint64_t num_vertices;
  std::uint64_t num_edges;
  std::uint64_t max_out_degree;
  std::uint64_t max_in_degree;
  std::uint64_t header_checksum;  // FNV over header (field zeroed) + table
};
static_assert(sizeof(SnapshotHeader) == 64);

struct SectionEntry {
  std::uint32_t kind;
  std::uint32_t reserved;  // zero
  std::uint64_t offset;    // from file start; kSectionAlignment-aligned
  std::uint64_t size_bytes;
  std::uint64_t checksum;  // FNV-1a 64 over the payload bytes
};
static_assert(sizeof(SectionEntry) == 32);

inline constexpr std::uint32_t kFlagDirected = 1u << 0;
inline constexpr std::uint32_t kFlagWeighted = 1u << 1;

/// FNV-1a 64 over a byte range (the snapshot checksum).
std::uint64_t Fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 14695981039346656037ULL);

/// Writes `graph` as a `.gab` snapshot at `path` (atomically: a temp file
/// in the same directory is renamed over `path` on success).
Status WriteSnapshot(const Graph& graph, const std::string& path);

/// An application-defined section appended after the graph sections.
/// Checksummed and table-listed like any other section; readers that do
/// not know the kind simply never bind it.
struct ExtraSection {
  SectionKind kind;
  const void* data;
  std::uint64_t size_bytes;
};

/// WriteSnapshot plus caller-supplied extra sections (ga::store::chain
/// uses this to embed provenance records in `.gab` files).
Status WriteSnapshot(const Graph& graph, const std::string& path,
                     std::span<const ExtraSection> extra_sections);

/// Copies one section's payload out of a snapshot, verifying that
/// section's checksum (only that one — O(section), not O(file)).
/// NotFound when the snapshot has no section of `kind`; IoError on a
/// malformed file or checksum mismatch.
Result<std::vector<std::byte>> ReadSectionPayload(const std::string& path,
                                                  SectionKind kind);

struct ReadOptions {
  /// Verify every section checksum AND the structural invariants
  /// (monotone offsets, in-range neighbours, sorted ids, canonical edge
  /// order) before handing the graph out. Costs one streaming pass over
  /// the file; turning it off makes the load O(1) but trades away both
  /// corruption detection and index-range guarantees — only for files
  /// this process just wrote or verified.
  bool verify_checksums = true;
};

/// Maps a `.gab` snapshot and binds a Graph straight into the mapping
/// (zero-copy; the mapping is released when the Graph dies). With the
/// default options, malformed, truncated, version-skewed, corrupt or
/// index-inconsistent files return a Status — never UB.
Result<Graph> ReadSnapshot(const std::string& path,
                           const ReadOptions& options = {});

/// Header + section table of a snapshot, for `data inspect`.
struct SnapshotInfo {
  SnapshotHeader header;
  std::vector<SectionEntry> sections;
  std::uint64_t file_size = 0;
};

Result<SnapshotInfo> InspectSnapshot(const std::string& path);

/// Full integrity check (== a default ReadSnapshot, result discarded):
/// header + checksums + structural invariants. Reads every byte.
Status VerifySnapshot(const std::string& path);

}  // namespace ga::store

#endif  // GRAPHALYTICS_STORE_SNAPSHOT_H_
