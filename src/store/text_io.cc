#include "store/text_io.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string_view>
#include <vector>

#include "core/exec/exec.h"

namespace ga::store {

namespace {

struct RawEdgeRecord {
  VertexId source;
  VertexId target;
  Weight weight;
};

// First parse failure inside one chunk: the chunk-local line index plus
// the reason. Slots keep counting lines after an error so the global
// line number of the earliest failure is still exact.
struct ChunkError {
  bool failed = false;
  std::int64_t local_line = 0;
  std::string message;
};

// Cuts [c_0=0, c_1, ..., c_k=size) splitting `text` into chunks that
// start at line starts. c_i for 0<i<k is the first line start at or after
// the i-th slot boundary — a pure function of the byte count, so the
// decomposition (and thus the merged record order) is identical at any
// thread count.
std::vector<std::size_t> LineAlignedCuts(const std::string& text,
                                         int num_chunks) {
  std::vector<std::size_t> cuts;
  cuts.reserve(static_cast<std::size_t>(num_chunks) + 1);
  cuts.push_back(0);
  const std::size_t size = text.size();
  for (int chunk = 1; chunk < num_chunks; ++chunk) {
    const std::size_t boundary = static_cast<std::size_t>(
        exec::ExecContext::SliceOf(0, static_cast<std::int64_t>(size), chunk,
                                   num_chunks)
            .begin);
    const std::size_t newline = text.find('\n', boundary);
    cuts.push_back(newline == std::string::npos ? size : newline + 1);
  }
  cuts.push_back(size);
  return cuts;
}

// Runs body(chunk) for every chunk, on the pool when present. The chunk
// count comes from the byte size alone (exec determinism contract).
template <typename Body>
void ForEachChunk(exec::ExecContext& ctx, int num_chunks, Body&& body) {
  if (ctx.pool() != nullptr && num_chunks > 1 &&
      ctx.num_host_threads() > 1) {
    ctx.pool()->Execute(num_chunks,
                        [&](std::int64_t chunk) { body(chunk); });
  } else {
    for (int chunk = 0; chunk < num_chunks; ++chunk) body(chunk);
  }
}

// Visits each line of [begin, end) in `text`, calling
// fn(local_line, line) until it returns false.
template <typename Fn>
void ForEachLineInRange(const std::string& text, std::size_t begin,
                        std::size_t end, Fn&& fn) {
  std::size_t line_start = begin;
  std::int64_t local_line = 0;
  while (line_start < end) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos || line_end > end) line_end = end;
    std::string_view line(text.data() + line_start, line_end - line_start);
    ++local_line;
    line_start = line_end + 1;
    if (!fn(local_line, line)) return;
  }
}

// Shared skeleton for the two chunked parsers: splits `text`, parses each
// chunk into its slot buffer, counts lines, and converts the earliest
// failure into a "file:line: <malformed_message>" Status (same wording as
// the serial core/edge_list path).
template <typename Record, typename ParseLine>
Status ParseChunked(const std::string& text, const std::string& name,
                    const std::string& malformed_message,
                    exec::ExecContext& ctx,
                    exec::SlotBuffers<Record>* records,
                    ParseLine&& parse_line) {
  const int num_chunks =
      std::max(1, exec::ExecContext::NumSlots(
                      static_cast<std::int64_t>(text.size())));
  const std::vector<std::size_t> cuts = LineAlignedCuts(text, num_chunks);
  records->Reset(num_chunks);
  std::vector<std::int64_t> chunk_lines(num_chunks, 0);
  std::vector<ChunkError> chunk_errors(num_chunks);
  ForEachChunk(ctx, num_chunks, [&](std::int64_t chunk) {
    std::vector<Record>& out = records->buf(static_cast<int>(chunk));
    ChunkError& error = chunk_errors[chunk];
    ForEachLineInRange(
        text, cuts[chunk], cuts[chunk + 1],
        [&](std::int64_t local_line, std::string_view line) {
          chunk_lines[chunk] = local_line;
          if (error.failed) return true;  // keep counting lines only
          Record record;
          switch (parse_line(line, &record)) {
            case LineParse::kSkip:
              break;
            case LineParse::kOk:
              out.push_back(record);
              break;
            case LineParse::kMalformed:
              error.failed = true;
              error.local_line = local_line;
              break;
          }
          return true;
        });
  });
  std::int64_t lines_before = 0;
  for (int chunk = 0; chunk < num_chunks; ++chunk) {
    if (chunk_errors[chunk].failed) {
      return Status::IoError(
          name + ":" +
          std::to_string(lines_before + chunk_errors[chunk].local_line) +
          ": " + malformed_message);
    }
    lines_before += chunk_lines[chunk];
  }
  return Status::Ok();
}

Status WriteLineBlocks(const std::string& path, std::int64_t count,
                       exec::ExecContext& ctx,
                       const std::function<void(std::int64_t,
                                                std::string*)>& format) {
  // Format per-slot blocks in parallel, then concatenate in slot order —
  // the file is byte-identical to a serial writer's.
  const int num_slots = std::max(1, exec::ExecContext::NumSlots(count));
  std::vector<std::string> blocks(num_slots);
  ForEachChunk(ctx, num_slots, [&](std::int64_t slot) {
    const exec::Slice slice = exec::ExecContext::SliceOf(
        0, count, static_cast<int>(slot), num_slots);
    std::string& block = blocks[slot];
    block.reserve(static_cast<std::size_t>(slice.end - slice.begin) * 16);
    for (std::int64_t i = slice.begin; i < slice.end; ++i) {
      format(i, &block);
    }
  });
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write " + path);
  for (const std::string& block : blocks) {
    out.write(block.data(), static_cast<std::streamsize>(block.size()));
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::Ok();
}

void AppendFormatted(std::string* out, const char* format, ...) {
  char buffer[96];
  va_list args;
  va_start(args, format);
  int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  // vsnprintf reports the untruncated length; clamp so a future
  // over-long line can never read past the buffer.
  written = std::min(written, static_cast<int>(sizeof(buffer) - 1));
  if (written > 0) out->append(buffer, static_cast<std::size_t>(written));
}

}  // namespace

Result<Graph> ImportGraphText(const std::string& path_prefix,
                              const ImportOptions& options) {
  GA_ASSIGN_OR_RETURN(std::string vertex_text,
                      ReadTextFile(path_prefix + ".v"));
  GA_ASSIGN_OR_RETURN(std::string edge_text,
                      ReadTextFile(path_prefix + ".e"));
  exec::ExecContext ctx(options.pool);

  exec::SlotBuffers<VertexId> vertices;
  GA_RETURN_IF_ERROR(ParseChunked(
      vertex_text, path_prefix + ".v",
      "malformed vertex line (expected \"<id>\")", ctx, &vertices,
      [](std::string_view line, VertexId* id) {
        return ParseVertexLine(line, id);
      }));
  exec::SlotBuffers<RawEdgeRecord> edges;
  const bool weighted = options.weighted;
  GA_RETURN_IF_ERROR(ParseChunked(
      edge_text, path_prefix + ".e",
      weighted
          ? "malformed edge line (expected \"<source> <target> <weight>\")"
          : "malformed edge line (expected \"<source> <target>\")",
      ctx, &edges, [weighted](std::string_view line, RawEdgeRecord* record) {
        record->weight = 1.0;
        return ParseEdgeLine(line, weighted, &record->source,
                             &record->target, &record->weight);
      }));

  GraphBuilder builder(options.directedness, options.weighted,
                       GraphBuilder::AnomalyPolicy::kReject);
  builder.ReserveVertices(vertices.TotalSize());
  builder.ReserveEdges(edges.TotalSize());
  vertices.Drain([&builder](const VertexId& id) { builder.AddVertex(id); });
  edges.Drain([&builder](const RawEdgeRecord& record) {
    builder.AddEdge(record.source, record.target, record.weight);
  });
  return std::move(builder).Build(options.pool);
}

Status ExportGraphText(const Graph& graph, const std::string& path_prefix,
                       exec::ThreadPool* pool) {
  exec::ExecContext ctx(pool);
  GA_RETURN_IF_ERROR(WriteLineBlocks(
      path_prefix + ".v", graph.num_vertices(), ctx,
      [&graph](std::int64_t v, std::string* out) {
        AppendFormatted(out, "%lld\n",
                        static_cast<long long>(graph.ExternalId(v)));
      }));
  const auto edges = graph.edges();
  const bool weighted = graph.is_weighted();
  return WriteLineBlocks(
      path_prefix + ".e", graph.num_edges(), ctx,
      [&graph, edges, weighted](std::int64_t e, std::string* out) {
        const Edge& edge = edges[e];
        if (weighted) {
          // %.17g prints the shortest-17 form: reparsing reproduces the
          // exact double, so text round trips preserve weights bit-wise.
          AppendFormatted(out, "%lld %lld %.17g\n",
                          static_cast<long long>(
                              graph.ExternalId(edge.source)),
                          static_cast<long long>(
                              graph.ExternalId(edge.target)),
                          edge.weight);
        } else {
          AppendFormatted(out, "%lld %lld\n",
                          static_cast<long long>(
                              graph.ExternalId(edge.source)),
                          static_cast<long long>(
                              graph.ExternalId(edge.target)));
        }
      });
}

}  // namespace ga::store
