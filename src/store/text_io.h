// Parallel chunked import/export of LDBC Graphalytics `.v`/`.e` text.
//
// Import splits each file into byte ranges aligned to line starts, parses
// every chunk on the host pool through core/edge_list's per-line parsers,
// and merges the parsed records in slot order — the resulting Graph is
// byte-identical to a serial ParseGraphText parse at any --jobs value
// (the chunk boundaries depend only on the byte count, per the ga::exec
// determinism contract). Malformed input is rejected with a Status naming
// the file and the global 1-based line number, even when the bad line sits
// deep inside a parallel chunk.
//
// Export writes the same two files; weights are printed with %.17g, so an
// export -> import round trip reproduces every weight bit (the historical
// serial WriteGraphFiles keeps its 6-digit format for compatibility).
#ifndef GRAPHALYTICS_STORE_TEXT_IO_H_
#define GRAPHALYTICS_STORE_TEXT_IO_H_

#include <string>

#include "core/edge_list.h"
#include "core/graph.h"
#include "core/status.h"

namespace ga::store {

struct ImportOptions {
  Directedness directedness = Directedness::kDirected;
  bool weighted = false;
  /// Host pool for chunked parsing and the graph build (null = serial).
  exec::ThreadPool* pool = nullptr;
};

/// Loads `<path_prefix>.v` + `<path_prefix>.e` with chunk-parallel
/// parsing. Duplicate edges and self-loops are rejected (the Graphalytics
/// data model forbids them in distributed datasets).
Result<Graph> ImportGraphText(const std::string& path_prefix,
                              const ImportOptions& options);

/// Writes `graph` as `<path_prefix>.v` + `<path_prefix>.e`, formatting
/// line blocks in parallel and concatenating them in slot order.
Status ExportGraphText(const Graph& graph, const std::string& path_prefix,
                       exec::ThreadPool* pool = nullptr);

}  // namespace ga::store

#endif  // GRAPHALYTICS_STORE_TEXT_IO_H_
