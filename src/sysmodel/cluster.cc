#include "sysmodel/cluster.h"

#include <algorithm>
#include <cmath>

namespace ga::sysmodel {

ClusterModel::ClusterModel(const ClusterConfig& config) : config_(config) {
  config_.num_machines = std::max(config_.num_machines, 1);
  config_.threads_per_machine = std::max(config_.threads_per_machine, 1);
}

double ClusterModel::MachineThroughput(int threads) const {
  const MachineSpec& machine = config_.machine;
  const int full_speed = std::min(threads, machine.cores);
  const int hyper = std::max(
      0, std::min(threads, machine.hardware_threads) - machine.cores);
  return machine.core_ops_per_second *
         (static_cast<double>(full_speed) +
          config_.hyperthread_efficiency * static_cast<double>(hyper));
}

double ClusterModel::PerThreadThroughput() const {
  const int threads = config_.threads_per_machine;
  return MachineThroughput(threads) / static_cast<double>(threads);
}

double ClusterModel::BarrierSeconds() const {
  const double rounds =
      1.0 + std::log2(static_cast<double>(config_.num_machines));
  return config_.barrier_seconds * rounds;
}

double ClusterModel::SequentialSeconds(std::uint64_t ops) const {
  return static_cast<double>(ops) / config_.machine.core_ops_per_second;
}

double ClusterModel::SuperstepSeconds(
    std::span<const std::uint64_t> worker_ops,
    std::span<const MachineComm> comm) const {
  const int machines = config_.num_machines;
  const int threads = config_.threads_per_machine;
  const double per_thread = PerThreadThroughput();

  double slowest_machine = 0.0;
  for (int m = 0; m < machines; ++m) {
    std::uint64_t max_thread_ops = 0;
    std::uint64_t total_ops = 0;
    for (int t = 0; t < threads; ++t) {
      const std::size_t w = static_cast<std::size_t>(m) * threads + t;
      if (w < worker_ops.size()) {
        max_thread_ops = std::max(max_thread_ops, worker_ops[w]);
        total_ops += worker_ops[w];
      }
    }
    // Amdahl decomposition: the serial share runs on one core at full
    // speed; the parallel share is paced by the most loaded thread.
    const double serial = config_.serial_fraction;
    double machine_seconds =
        serial * static_cast<double>(total_ops) /
            config_.machine.core_ops_per_second +
        (1.0 - serial) * static_cast<double>(max_thread_ops) / per_thread;
    if (machines > 1 && m < static_cast<int>(comm.size())) {
      const double wire_bytes = static_cast<double>(
          std::max(comm[m].bytes_sent, comm[m].bytes_received));
      machine_seconds +=
          config_.network.latency_seconds *
              std::ceil(std::log2(static_cast<double>(machines))) +
          wire_bytes / config_.network.bandwidth_bytes_per_second;
    }
    slowest_machine = std::max(slowest_machine, machine_seconds);
  }
  return slowest_machine + BarrierSeconds();
}

MemoryAccountant::MemoryAccountant(std::int64_t capacity_bytes_per_machine,
                                   int num_machines)
    : capacity_(capacity_bytes_per_machine),
      used_(std::max(num_machines, 1), 0),
      peak_(std::max(num_machines, 1), 0) {}

Status MemoryAccountant::Charge(int machine, std::int64_t bytes,
                                const std::string& what) {
  if (used_[machine] + bytes > capacity_) {
    return Status::OutOfMemory(
        what + ": machine " + std::to_string(machine) + " needs " +
        std::to_string(used_[machine] + bytes) + " bytes, capacity " +
        std::to_string(capacity_));
  }
  used_[machine] += bytes;
  peak_[machine] = std::max(peak_[machine], used_[machine]);
  return Status::Ok();
}

void MemoryAccountant::Release(int machine, std::int64_t bytes) {
  used_[machine] = std::max<std::int64_t>(0, used_[machine] - bytes);
}

void MemoryAccountant::Reset() {
  std::fill(used_.begin(), used_.end(), 0);
  std::fill(peak_.begin(), peak_.end(), 0);
}

Status MemoryAccountant::RestoreState(std::span<const std::int64_t> used,
                                      std::span<const std::int64_t> peak) {
  if (used.size() != used_.size() || peak.size() != peak_.size()) {
    return Status::InvalidArgument(
        "memory accountant restore: checkpoint covers " +
        std::to_string(used.size()) + " machines, job has " +
        std::to_string(used_.size()));
  }
  std::copy(used.begin(), used.end(), used_.begin());
  std::copy(peak.begin(), peak.end(), peak_.begin());
  return Status::Ok();
}

}  // namespace ga::sysmodel
