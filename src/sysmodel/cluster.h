// ClusterModel: deterministic BSP cost model of a parallel/distributed
// system (see DESIGN.md §1 and §5).
//
// The platform analogues execute algorithms for real and split the work
// over virtual workers (machine, thread). The model converts per-worker
// operation counts and per-machine communication volumes into simulated
// seconds:
//
//   t_step = max_m [ t_comp(m) + t_comm(m) ] + t_barrier
//   t_comp(m) = max_thread_ops(m) / per_thread_throughput
//   t_comm(m) = latency * ceil(log2 p) + max(sent_m, recv_m) / bandwidth
//   t_barrier = barrier base cost * (1 + log2 p)
//
// Hyper-threading: threads beyond the core count contribute at a reduced
// efficiency (configurable per platform profile), reproducing the paper's
// observation that most platforms gain little beyond 16 threads (§4.3).
#ifndef GRAPHALYTICS_SYSMODEL_CLUSTER_H_
#define GRAPHALYTICS_SYSMODEL_CLUSTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"
#include "sysmodel/machine.h"

namespace ga::sysmodel {

struct ClusterConfig {
  MachineSpec machine = MachineSpec::Das5();
  NetworkSpec network = NetworkSpec::GigabitEthernet();
  int num_machines = 1;
  int threads_per_machine = 1;
  /// Relative throughput of a hyper-thread (a thread beyond the physical
  /// core count). 0 disables any gain from hyper-threading.
  double hyperthread_efficiency = 0.25;
  /// Amdahl serial fraction of each superstep's computation: the share of
  /// work that does not parallelise (runtime bookkeeping, aggregation,
  /// message-queue management). Caps the vertical speedup at
  /// ~1/serial_fraction, reproducing the per-platform maxima of Table 9.
  double serial_fraction = 0.05;
  /// Base cost of a barrier / synchronisation round, seconds.
  double barrier_seconds = 20e-6;
};

/// Per-superstep communication volume of one machine.
struct MachineComm {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class ClusterModel {
 public:
  explicit ClusterModel(const ClusterConfig& config);

  int num_machines() const { return config_.num_machines; }
  int threads_per_machine() const { return config_.threads_per_machine; }
  int num_workers() const {
    return config_.num_machines * config_.threads_per_machine;
  }
  const ClusterConfig& config() const { return config_; }

  /// Aggregate ops/second of one machine running `threads` threads.
  double MachineThroughput(int threads) const;

  /// Ops/second available to each of the configured threads (the slowest
  /// thread paces a superstep; HT threads run below core speed).
  double PerThreadThroughput() const;

  /// Simulated seconds for one BSP superstep.
  /// `worker_ops[w]` is the op count of worker w = machine * threads + t;
  /// `comm` (may be empty for single-machine runs) gives per-machine
  /// communication volumes.
  double SuperstepSeconds(std::span<const std::uint64_t> worker_ops,
                          std::span<const MachineComm> comm = {}) const;

  /// Simulated seconds to execute `ops` sequentially on one core.
  double SequentialSeconds(std::uint64_t ops) const;

  double BarrierSeconds() const;

 private:
  ClusterConfig config_;
};

/// Tracks per-machine memory consumption against capacity; charging past
/// the budget fails with kOutOfMemory, which the harness surfaces as a
/// crashed job (stress-test experiment, §4.6).
class MemoryAccountant {
 public:
  MemoryAccountant(std::int64_t capacity_bytes_per_machine,
                   int num_machines);

  Status Charge(int machine, std::int64_t bytes, const std::string& what);
  void Release(int machine, std::int64_t bytes);
  void Reset();

  /// Wholesale replacement of the per-machine used/peak state from a
  /// superstep checkpoint (ga::resilience). Restoring both keeps later
  /// Release calls balanced AND preserves the peak that drives the
  /// swap-penalty decision, so a resumed job reports the same memory
  /// behaviour as an uninterrupted one. kInvalidArgument on a machine-
  /// count mismatch.
  Status RestoreState(std::span<const std::int64_t> used,
                      std::span<const std::int64_t> peak);

  std::int64_t used(int machine) const { return used_[machine]; }
  std::int64_t peak(int machine) const { return peak_[machine]; }
  std::int64_t capacity() const { return capacity_; }

 private:
  std::int64_t capacity_;
  std::vector<std::int64_t> used_;
  std::vector<std::int64_t> peak_;
};

}  // namespace ga::sysmodel

#endif  // GRAPHALYTICS_SYSMODEL_CLUSTER_H_
