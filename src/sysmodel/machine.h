// Machine and network specifications for the simulated cluster.
//
// Defaults reproduce Table 7 of the paper (DAS-5 compute nodes): dual
// 8-core Intel Xeon E5-2630 (16 cores, 32 hyper-threads), 64 GiB memory,
// 1 Gbit/s Ethernet + FDR InfiniBand.
#ifndef GRAPHALYTICS_SYSMODEL_MACHINE_H_
#define GRAPHALYTICS_SYSMODEL_MACHINE_H_

#include <cstdint>

namespace ga::sysmodel {

struct MachineSpec {
  int cores = 16;
  int hardware_threads = 32;
  std::int64_t memory_bytes = 64LL * 1024 * 1024 * 1024;
  /// Abstract machine operations per second per core. One "op" is the cost
  /// unit engines charge per unit of work (edge relaxation, message
  /// handling, ...); profiles express their overheads as op multiples.
  double core_ops_per_second = 2.0e8;

  /// DAS-5 node per Table 7 of the paper.
  static MachineSpec Das5() { return MachineSpec{}; }
};

struct NetworkSpec {
  /// One-way message latency in seconds.
  double latency_seconds = 100e-6;
  /// Per-machine bandwidth in bytes/second.
  double bandwidth_bytes_per_second = 125e6;  // 1 Gbit/s

  static NetworkSpec GigabitEthernet() { return NetworkSpec{}; }
  static NetworkSpec InfinibandFdr() {
    // FDR InfiniBand: ~56 Gbit/s, ~1.5 us latency.
    return NetworkSpec{1.5e-6, 7.0e9};
  }
};

}  // namespace ga::sysmodel

#endif  // GRAPHALYTICS_SYSMODEL_MACHINE_H_
