#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

namespace ga::telemetry {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

namespace internal {
unsigned ThisThreadOrdinal() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}
}  // namespace internal

double Histogram::Snapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the q-quantile in the sorted multiset (nearest-rank
  // definition; ceil keeps p100 == the maximum's bucket).
  const std::int64_t rank = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(
          std::ceil(q * static_cast<double>(count))),
      1, count);
  std::int64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const std::int64_t in_bucket = buckets[b];
    if (in_bucket <= 0) continue;
    if (cumulative + in_bucket >= rank) {
      const double lower = static_cast<double>(BucketLowerBound(b));
      const double upper = static_cast<double>(BucketUpperBound(b));
      const double inside = static_cast<double>(rank - cumulative);
      return lower +
             (upper - lower) * (inside / static_cast<double>(in_bucket));
    }
    cumulative += in_bucket;
  }
  // Unreachable when buckets sum to count; tolerate racy snapshots.
  return static_cast<double>(BucketUpperBound(kNumBuckets - 1));
}

}  // namespace ga::telemetry
