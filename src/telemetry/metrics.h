// ga::telemetry — lock-free always-on service metrics (the fleet-level
// counterpart of the per-job Granula traces, docs/OBSERVABILITY.md).
//
// Three instrument kinds, all safe for concurrent recording from any
// number of threads with NO locks on the hot path:
//
//   Counter    monotonic, sharded: each recording thread lands on its own
//              cache-line-padded shard (relaxed fetch_add, no line
//              bouncing between executor threads); Value() sums shards.
//   Gauge      a single last-written atomic (resident bytes, queue depth).
//   Histogram  log-bucketed latency distribution: power-of-two-ish
//              buckets (4 linear sub-buckets per octave, <= 25% relative
//              bucket width), exact count and sum kept alongside, and a
//              deterministic quantile extraction — p50/p90/p99 are a pure
//              function of the merged bucket counts, so two snapshots
//              with equal buckets always report equal percentiles.
//
// Recording never allocates: every instrument's storage is fixed at
// construction (the zero-steady-state-allocation contract of DESIGN.md
// §8 extended to telemetry, enforced by tests/telemetry/). Recording is
// also gated on a process-wide enable flag so the overhead gate
// (bench/telemetry_overhead.cc) can measure the telemetered vs
// untelemetered serving path in one binary.
//
// Telemetry only OBSERVES: no instrument feeds back into admission,
// scheduling or execution, so outputs, WorkLedger and simulated metrics
// are byte-identical with telemetry enabled or disabled at any --jobs.
#ifndef GRAPHALYTICS_TELEMETRY_METRICS_H_
#define GRAPHALYTICS_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace ga::telemetry {

/// Process-wide recording switch (default on). Disabling turns every
/// Add/Set/Record into one relaxed load + branch; instruments keep their
/// accumulated values. The overhead bench flips this to compare the two
/// serving paths; production never turns it off.
bool Enabled();
void SetEnabled(bool on);

namespace internal {
/// Small dense thread ordinal for shard selection: the first kShards
/// recording threads get distinct shards; later threads wrap. Stable for
/// a thread's lifetime.
unsigned ThisThreadOrdinal();
}  // namespace internal

/// Monotonic counter. Add() is wait-free: one relaxed fetch_add on the
/// calling thread's shard.
class Counter {
 public:
  static constexpr unsigned kShards = 8;  // power of two

  void Add(std::int64_t delta = 1) {
    if (!Enabled()) return;
    shards_[internal::ThisThreadOrdinal() & (kShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::int64_t Value() const {
    std::int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> value{0};
  };
  Shard shards_[kShards];
};

/// Last-written value. Set/Add are single relaxed atomics — gauges track
/// externally-computed levels (resident bytes, depth), not hot-path
/// increments, so sharding would only blur the level.
class Gauge {
 public:
  void Set(std::int64_t value) {
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-bucketed histogram over non-negative int64 values (latencies are
/// recorded in integer microseconds; the registry attaches a unit scale
/// for exposition). Bucket layout: values 0..3 get unit buckets; every
/// octave [2^e, 2^(e+1)) above splits into 4 linear sub-buckets, so the
/// relative bucket width never exceeds 1/4 — which bounds the quantile
/// extraction error at 25% (tests/telemetry/histogram_test.cc).
class Histogram {
 public:
  static constexpr int kSubBits = 2;
  static constexpr int kSub = 1 << kSubBits;  // sub-buckets per octave
  static constexpr int kMaxExponent = 62;     // int64 MSB range
  static constexpr int kNumBuckets =
      kSub + (kMaxExponent - kSubBits + 1) * kSub;

  /// Bucket index of a value (negatives clamp to 0).
  static int BucketOf(std::int64_t value) {
    const std::uint64_t v =
        value > 0 ? static_cast<std::uint64_t>(value) : 0u;
    if (v < kSub) return static_cast<int>(v);
    const int exponent = 63 - std::countl_zero(v);
    const int sub = static_cast<int>((v >> (exponent - kSubBits)) &
                                     (kSub - 1));
    return kSub + (exponent - kSubBits) * kSub + sub;
  }

  /// Inclusive lower bound of a bucket's value range.
  static std::int64_t BucketLowerBound(int bucket) {
    if (bucket < kSub) return bucket;
    const int group = bucket - kSub;
    const int shift = group / kSub;  // exponent - kSubBits
    const int sub = group % kSub;
    return static_cast<std::int64_t>(kSub + sub) << shift;
  }

  /// Exclusive upper bound of a bucket's value range.
  static std::int64_t BucketUpperBound(int bucket) {
    if (bucket < kSub) return bucket + 1;
    const int shift = (bucket - kSub) / kSub;
    return BucketLowerBound(bucket) + (std::int64_t{1} << shift);
  }

  /// Wait-free: three relaxed fetch_adds (bucket, count, sum).
  void Record(std::int64_t value) {
    if (!Enabled()) return;
    if (value < 0) value = 0;
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::int64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// A point-in-time copy of the distribution. Concurrent recording may
  /// land between the loads (count/sum/buckets are each exact but not
  /// mutually atomic) — fine for monitoring, and quiescent snapshots are
  /// exact. Fixed-size storage: taking a snapshot never allocates.
  struct Snapshot {
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::array<std::int64_t, kNumBuckets> buckets{};

    void Merge(const Snapshot& other) {
      count += other.count;
      sum += other.sum;
      for (int b = 0; b < kNumBuckets; ++b) buckets[b] += other.buckets[b];
    }

    /// Deterministic quantile from the merged buckets: find the bucket
    /// holding the ceil(q*count)-th smallest sample and interpolate
    /// linearly inside its range. For any sample set the result is
    /// within one bucket width of the exact sorted-sample quantile —
    /// i.e. within 25% relative error for values >= 4 (unit buckets are
    /// exact below that).
    double Quantile(double q) const;

    double MeanValue() const {
      return count > 0
                 ? static_cast<double>(sum) / static_cast<double>(count)
                 : 0.0;
    }
  };

  Snapshot Take() const {
    Snapshot snapshot;
    snapshot.count = count_.load(std::memory_order_relaxed);
    snapshot.sum = sum_.load(std::memory_order_relaxed);
    for (int b = 0; b < kNumBuckets; ++b) {
      snapshot.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    return snapshot;
  }

 private:
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> buckets_[kNumBuckets]{};
};

}  // namespace ga::telemetry

#endif  // GRAPHALYTICS_TELEMETRY_METRICS_H_
