#include "telemetry/registry.h"

#include <algorithm>
#include <cstdio>

#include "core/json_writer.h"

namespace ga::telemetry {

namespace {

/// Canonical label serialization: sorted by key, Prometheus-escaped
/// values. Doubles as the series map key, so label order at the call
/// site never splits a series.
std::string CanonicalLabelKey(Labels* labels) {
  std::sort(labels->begin(), labels->end());
  std::string key;
  for (std::size_t i = 0; i < labels->size(); ++i) {
    if (i > 0) key += ',';
    key += (*labels)[i].first;
    key += "=\"";
    key += EscapeLabelValue((*labels)[i].second);
    key += '"';
  }
  return key;
}

std::string FormatDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

void AppendSample(std::string* out, const std::string& name,
                  const std::string& label_key,
                  const std::string& extra_label,
                  const std::string& value) {
  *out += name;
  if (!label_key.empty() || !extra_label.empty()) {
    *out += '{';
    *out += label_key;
    if (!label_key.empty() && !extra_label.empty()) *out += ',';
    *out += extra_label;
    *out += '}';
  }
  *out += ' ';
  *out += value;
  *out += '\n';
}

}  // namespace

std::string EscapeLabelValue(std::string_view value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': escaped += "\\\\"; break;
      case '"': escaped += "\\\""; break;
      case '\n': escaped += "\\n"; break;
      default: escaped += c;
    }
  }
  return escaped;
}

Registry& Registry::Global() {
  static Registry* global = new Registry();
  return *global;
}

Registry::Series* Registry::GetSeries(const std::string& name,
                                      const Labels& labels,
                                      const std::string& help,
                                      MetricKind kind, double unit_scale) {
  Labels canonical = labels;
  std::string label_key = CanonicalLabelKey(&canonical);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [family_it, family_inserted] = families_.try_emplace(name);
  Family& family = family_it->second;
  if (family_inserted) {
    family.kind = kind;
    family.help = help;
    family.unit_scale = unit_scale;
  } else if (family.kind != kind) {
    return nullptr;  // kind clash: caller gets a detached dummy
  } else if (family.help.empty() && !help.empty()) {
    family.help = help;
  }
  auto [series_it, series_inserted] =
      family.series.try_emplace(std::move(label_key));
  Series& series = series_it->second;
  if (series_inserted) {
    series.label_key = series_it->first;
    series.labels = std::move(canonical);
    switch (kind) {
      case MetricKind::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        series.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  return &series;
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels,
                              const std::string& help) {
  Series* series =
      GetSeries(name, labels, help, MetricKind::kCounter, 1.0);
  if (series != nullptr) return series->counter.get();
  static Counter* detached = new Counter();
  return detached;
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels,
                          const std::string& help) {
  Series* series = GetSeries(name, labels, help, MetricKind::kGauge, 1.0);
  if (series != nullptr) return series->gauge.get();
  static Gauge* detached = new Gauge();
  return detached;
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels,
                                  const std::string& help,
                                  double unit_scale) {
  Series* series =
      GetSeries(name, labels, help, MetricKind::kHistogram, unit_scale);
  if (series != nullptr) return series->histogram.get();
  static Histogram* detached = new Histogram();
  return detached;
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case MetricKind::kCounter: out += "counter\n"; break;
      case MetricKind::kGauge: out += "gauge\n"; break;
      case MetricKind::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& [label_key, series] : family.series) {
      switch (family.kind) {
        case MetricKind::kCounter:
          AppendSample(&out, name, label_key, "",
                       std::to_string(series.counter->Value()));
          break;
        case MetricKind::kGauge:
          AppendSample(&out, name, label_key, "",
                       std::to_string(series.gauge->Value()));
          break;
        case MetricKind::kHistogram: {
          const Histogram::Snapshot snapshot = series.histogram->Take();
          // Cumulative `le` buckets; empty buckets are elided (the
          // cumulative counts stay correct — Prometheus allows any
          // subset of boundaries), +Inf always closes the series.
          std::int64_t cumulative = 0;
          for (int b = 0; b < Histogram::kNumBuckets; ++b) {
            if (snapshot.buckets[b] == 0) continue;
            cumulative += snapshot.buckets[b];
            const double le =
                static_cast<double>(Histogram::BucketUpperBound(b)) *
                family.unit_scale;
            AppendSample(&out, name + "_bucket", label_key,
                         "le=\"" + FormatDouble(le) + "\"",
                         std::to_string(cumulative));
          }
          AppendSample(&out, name + "_bucket", label_key, "le=\"+Inf\"",
                       std::to_string(snapshot.count));
          AppendSample(&out, name + "_sum", label_key, "",
                       FormatDouble(static_cast<double>(snapshot.sum) *
                                    family.unit_scale));
          AppendSample(&out, name + "_count", label_key, "",
                       std::to_string(snapshot.count));
          break;
        }
      }
    }
  }
  return out;
}

void Registry::RenderJson(JsonWriter* json) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    json->Key(name).BeginArray();
    for (const auto& [label_key, series] : family.series) {
      json->BeginObject();
      if (!series.labels.empty()) {
        json->Key("labels").BeginObject();
        for (const auto& [key, value] : series.labels) {
          json->Field(key, std::string_view(value));
        }
        json->EndObject();
      }
      switch (family.kind) {
        case MetricKind::kCounter:
          json->Field("value", series.counter->Value());
          break;
        case MetricKind::kGauge:
          json->Field("value", series.gauge->Value());
          break;
        case MetricKind::kHistogram: {
          const Histogram::Snapshot snapshot = series.histogram->Take();
          json->Field("count", snapshot.count);
          json->Field("sum", static_cast<double>(snapshot.sum) *
                                 family.unit_scale);
          json->Field("p50", snapshot.Quantile(0.50) * family.unit_scale);
          json->Field("p90", snapshot.Quantile(0.90) * family.unit_scale);
          json->Field("p99", snapshot.Quantile(0.99) * family.unit_scale);
          break;
        }
      }
      json->EndObject();
    }
    json->EndArray();
  }
}

std::vector<std::string> Registry::FamilyNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, family] : families_) names.push_back(name);
  return names;
}

}  // namespace ga::telemetry
