// Process-wide metric registry: stable naming, label support, and the
// exposition formats (Prometheus text, JSON) for ga::telemetry
// instruments.
//
// Registration (GetCounter / GetGauge / GetHistogram) takes a mutex,
// builds strings and may allocate — callers do it ONCE at startup and
// cache the returned pointer; the instruments themselves are lock-free
// and allocation-free to record (telemetry/metrics.h). Returned pointers
// stay valid for the registry's lifetime (instruments are never removed).
//
// Naming follows the Prometheus conventions: families are
// `ga_<subsystem>_<what>[_total|_bytes|_seconds]`, snake_case, with
// labels for bounded dimensions (stage, outcome, priority). The same
// (name, labels) pair always returns the same instrument; a name reused
// with a different instrument kind returns a detached dummy instead of
// corrupting the family (programming error, surfaced by the unit tests).
//
// There is one process-global registry (Registry::Global()) for
// subsystem-wide metrics (store cache, harness retries), and components
// that need isolation — each ga::serve::Server, unit tests — own private
// instances and render global + own at exposition time.
#ifndef GRAPHALYTICS_TELEMETRY_REGISTRY_H_
#define GRAPHALYTICS_TELEMETRY_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace ga {
class JsonWriter;
}

namespace ga::telemetry {

/// Label key/value pairs. Order-insensitive: the registry canonicalises
/// by sorting on key, so {a=1,b=2} and {b=2,a=1} are the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-global registry for subsystem-wide metrics.
  static Registry& Global();

  /// Finds or creates the (name, labels) series in a counter family.
  /// `help` is retained from the first registration that supplies one.
  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  /// `unit_scale` multiplies recorded integer values at exposition time
  /// (1e-6 exposes microsecond recordings as Prometheus base-unit
  /// seconds). Fixed per family by the first registration.
  Histogram* GetHistogram(const std::string& name,
                          const Labels& labels = {},
                          const std::string& help = "",
                          double unit_scale = 1.0);

  /// Prometheus text exposition format (version 0.0.4): HELP/TYPE per
  /// family, one sample line per series, histogram families expanded to
  /// cumulative `_bucket{le=...}` + `_sum` + `_count`. Families and
  /// series render in sorted order, so equal registry contents render
  /// byte-identically.
  std::string RenderPrometheus() const;

  /// JSON exposition: an object keyed by family name; counter/gauge
  /// series carry `value`, histogram series carry count/sum (scaled) and
  /// deterministic p50/p90/p99. Written into an already-open object
  /// scope of `json`.
  void RenderJson(JsonWriter* json) const;

  /// Registered family names in render order (tests).
  std::vector<std::string> FamilyNames() const;

 private:
  struct Series {
    std::string label_key;  // canonical `k1="v1",k2="v2"` serialization
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    double unit_scale = 1.0;
    /// Keyed and rendered by the canonical label serialization.
    std::map<std::string, Series> series;
  };

  Series* GetSeries(const std::string& name, const Labels& labels,
                    const std::string& help, MetricKind kind,
                    double unit_scale);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// Escapes a label value for the Prometheus text format (backslash,
/// double quote, newline).
std::string EscapeLabelValue(std::string_view value);

}  // namespace ga::telemetry

#endif  // GRAPHALYTICS_TELEMETRY_REGISTRY_H_
