// Independent validation of the degree-oriented triangle kernel
// (algo/lcc_kernel.h). Every engine AND the reference LCC now share
// NeighborhoodIndex, so engine-vs-reference comparisons can no longer
// catch a kernel bug — this test checks the kernel against a brute-force
// flag-array links count on structured and random graphs, directed and
// undirected, at several thread counts.
#include "algo/lcc_kernel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/exec/thread_pool.h"
#include "core/graph.h"
#include "core/rng.h"

namespace ga::lcc {
namespace {

/// The definition, executed naively: links(v) = #{(u, w) : u, w in N(v),
/// w in out(u)} with N(v) the distinct in/out union minus v.
std::vector<std::int64_t> BruteForceLinks(const Graph& graph) {
  const VertexIndex n = graph.num_vertices();
  std::vector<std::int64_t> links(n, 0);
  std::vector<char> flag(n, 0);
  std::vector<VertexIndex> neighborhood;
  for (VertexIndex v = 0; v < n; ++v) {
    neighborhood.clear();
    for (VertexIndex u : graph.OutNeighbors(v)) {
      if (u != v && !flag[u]) {
        flag[u] = 1;
        neighborhood.push_back(u);
      }
    }
    if (graph.is_directed()) {
      for (VertexIndex u : graph.InNeighbors(v)) {
        if (u != v && !flag[u]) {
          flag[u] = 1;
          neighborhood.push_back(u);
        }
      }
    }
    for (VertexIndex u : neighborhood) {
      for (VertexIndex w : graph.OutNeighbors(u)) {
        if (w != v && flag[w]) ++links[v];
      }
    }
    for (VertexIndex u : neighborhood) flag[u] = 0;
  }
  return links;
}

Graph RandomGraph(Directedness directedness, VertexIndex n,
                  std::int64_t edges, std::uint64_t seed) {
  GraphBuilder builder(directedness);
  for (VertexIndex v = 0; v < n; ++v) builder.AddVertex(v);
  SplitMix64 rng(seed);
  for (std::int64_t e = 0; e < edges; ++e) {
    const auto a = static_cast<VertexId>(rng.Next() % n);
    const auto b = static_cast<VertexId>(rng.Next() % n);
    if (a != b) builder.AddEdge(a, b);
  }
  auto built = std::move(builder).Build();
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

void ExpectKernelMatchesBruteForce(const Graph& graph, int threads) {
  exec::ThreadPool pool(threads);
  exec::ExecContext exec(threads > 1 ? &pool : nullptr);
  NeighborhoodIndex index;
  index.Build(exec, graph);
  std::vector<std::int64_t> links;
  index.CountLinks(exec, &links);
  const std::vector<std::int64_t> expected = BruteForceLinks(graph);
  ASSERT_EQ(links.size(), expected.size());
  for (std::size_t v = 0; v < expected.size(); ++v) {
    EXPECT_EQ(links[v], expected[v]) << "links mismatch at vertex " << v;
  }
  // Degrees must match the distinct-neighbourhood definition too.
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    std::vector<char> seen(graph.num_vertices(), 0);
    EdgeIndex degree = 0;
    for (VertexIndex u : graph.OutNeighbors(v)) {
      if (!seen[u]++) ++degree;
    }
    if (graph.is_directed()) {
      for (VertexIndex u : graph.InNeighbors(v)) {
        if (!seen[u]++) ++degree;
      }
    }
    EXPECT_EQ(index.Degree(v), degree);
  }
}

TEST(LccKernelTest, TriangleUndirected) {
  GraphBuilder builder(Directedness::kUndirected);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  exec::ExecContext serial;
  NeighborhoodIndex index;
  index.Build(serial, graph.value());
  std::vector<std::int64_t> links;
  index.CountLinks(serial, &links);
  // Each vertex sees one triangle; its single neighbour pair is linked
  // in both directions under the undirected convention.
  EXPECT_EQ(links, (std::vector<std::int64_t>{2, 2, 2}));
}

TEST(LccKernelTest, DirectedCycleHasNoLinks) {
  GraphBuilder builder(Directedness::kDirected);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  auto graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  exec::ExecContext serial;
  NeighborhoodIndex index;
  index.Build(serial, graph.value());
  std::vector<std::int64_t> links;
  index.CountLinks(serial, &links);
  // The 3-cycle closes one triangle; each corner's opposite edge is a
  // single directed edge.
  EXPECT_EQ(links, (std::vector<std::int64_t>{1, 1, 1}));
}

TEST(LccKernelTest, EmptyAndEdgelessGraphs) {
  exec::ExecContext serial;
  {
    GraphBuilder builder(Directedness::kDirected);
    auto graph = std::move(builder).Build();
    ASSERT_TRUE(graph.ok());
    NeighborhoodIndex index;
    index.Build(serial, graph.value());
    std::vector<std::int64_t> links;
    index.CountLinks(serial, &links);
    EXPECT_TRUE(links.empty());
  }
  {
    GraphBuilder builder(Directedness::kUndirected);
    builder.AddVertex(0);
    builder.AddVertex(1);
    auto graph = std::move(builder).Build();
    ASSERT_TRUE(graph.ok());
    NeighborhoodIndex index;
    index.Build(serial, graph.value());
    std::vector<std::int64_t> links;
    index.CountLinks(serial, &links);
    EXPECT_EQ(links, (std::vector<std::int64_t>{0, 0}));
  }
}

TEST(LccKernelTest, MatchesBruteForceOnRandomDirectedGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    ExpectKernelMatchesBruteForce(
        RandomGraph(Directedness::kDirected, 120, 900, seed), 1);
  }
}

TEST(LccKernelTest, MatchesBruteForceOnRandomUndirectedGraphs) {
  for (std::uint64_t seed : {4u, 5u, 6u}) {
    ExpectKernelMatchesBruteForce(
        RandomGraph(Directedness::kUndirected, 120, 900, seed), 1);
  }
}

TEST(LccKernelTest, ThreadCountInvariant) {
  const Graph graph = RandomGraph(Directedness::kDirected, 200, 2400, 9);
  exec::ExecContext serial;
  NeighborhoodIndex index;
  index.Build(serial, graph);
  std::vector<std::int64_t> serial_links;
  index.CountLinks(serial, &serial_links);
  for (int threads : {2, 8}) {
    ExpectKernelMatchesBruteForce(graph, threads);
    exec::ThreadPool pool(threads);
    exec::ExecContext parallel(&pool);
    NeighborhoodIndex parallel_index;
    parallel_index.Build(parallel, graph);
    std::vector<std::int64_t> links;
    parallel_index.CountLinks(parallel, &links);
    EXPECT_EQ(links, serial_links) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ga::lcc
