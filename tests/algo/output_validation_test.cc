#include "algo/output.h"

#include <gtest/gtest.h>

#include "testing/graph_fixtures.h"

namespace ga {
namespace {

using ::ga::testing::MakeDirectedPath;

AlgorithmOutput IntOutput(Algorithm algorithm,
                          std::vector<std::int64_t> values) {
  AlgorithmOutput output;
  output.algorithm = algorithm;
  output.int_values = std::move(values);
  return output;
}

AlgorithmOutput DoubleOutput(Algorithm algorithm,
                             std::vector<double> values) {
  AlgorithmOutput output;
  output.algorithm = algorithm;
  output.double_values = std::move(values);
  return output;
}

TEST(ValidateOutputTest, BfsExactMatchPasses) {
  Graph graph = MakeDirectedPath(3);
  auto reference = IntOutput(Algorithm::kBfs, {0, 1, 2});
  EXPECT_TRUE(ValidateOutput(graph, reference, reference).ok());
}

TEST(ValidateOutputTest, BfsMismatchNamesVertex) {
  Graph graph = MakeDirectedPath(3);
  auto reference = IntOutput(Algorithm::kBfs, {0, 1, 2});
  auto actual = IntOutput(Algorithm::kBfs, {0, 1, 3});
  Status status = ValidateOutput(graph, reference, actual);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("vertex 2"), std::string::npos);
}

TEST(ValidateOutputTest, SizeMismatchFails) {
  Graph graph = MakeDirectedPath(3);
  auto reference = IntOutput(Algorithm::kBfs, {0, 1, 2});
  auto actual = IntOutput(Algorithm::kBfs, {0, 1});
  EXPECT_FALSE(ValidateOutput(graph, reference, actual).ok());
}

TEST(ValidateOutputTest, AlgorithmMismatchFails) {
  Graph graph = MakeDirectedPath(3);
  auto reference = IntOutput(Algorithm::kBfs, {0, 1, 2});
  auto actual = IntOutput(Algorithm::kWcc, {0, 1, 2});
  EXPECT_FALSE(ValidateOutput(graph, reference, actual).ok());
}

TEST(ValidateOutputTest, WccAcceptsRelabelledComponents) {
  Graph graph = MakeDirectedPath(4);
  auto reference = IntOutput(Algorithm::kWcc, {0, 0, 5, 5});
  auto actual = IntOutput(Algorithm::kWcc, {77, 77, 3, 3});
  EXPECT_TRUE(ValidateOutput(graph, reference, actual).ok());
}

TEST(ValidateOutputTest, WccRejectsSplitComponent) {
  Graph graph = MakeDirectedPath(4);
  auto reference = IntOutput(Algorithm::kWcc, {0, 0, 0, 0});
  auto actual = IntOutput(Algorithm::kWcc, {1, 1, 2, 2});
  EXPECT_FALSE(ValidateOutput(graph, reference, actual).ok());
}

TEST(ValidateOutputTest, WccRejectsMergedComponents) {
  Graph graph = MakeDirectedPath(4);
  auto reference = IntOutput(Algorithm::kWcc, {0, 0, 5, 5});
  auto actual = IntOutput(Algorithm::kWcc, {9, 9, 9, 9});
  EXPECT_FALSE(ValidateOutput(graph, reference, actual).ok());
}

TEST(ValidateOutputTest, PageRankToleratesEpsilon) {
  Graph graph = MakeDirectedPath(2);
  auto reference = DoubleOutput(Algorithm::kPageRank, {0.5, 0.5});
  auto actual = DoubleOutput(Algorithm::kPageRank, {0.500004, 0.499996});
  EXPECT_TRUE(ValidateOutput(graph, reference, actual).ok());
}

TEST(ValidateOutputTest, PageRankRejectsLargeDeviation) {
  Graph graph = MakeDirectedPath(2);
  auto reference = DoubleOutput(Algorithm::kPageRank, {0.5, 0.5});
  auto actual = DoubleOutput(Algorithm::kPageRank, {0.6, 0.4});
  EXPECT_FALSE(ValidateOutput(graph, reference, actual).ok());
}

TEST(ValidateOutputTest, CustomEpsilonRespected) {
  Graph graph = MakeDirectedPath(2);
  auto reference = DoubleOutput(Algorithm::kPageRank, {0.5, 0.5});
  auto actual = DoubleOutput(Algorithm::kPageRank, {0.52, 0.48});
  ValidationOptions loose;
  loose.epsilon = 0.1;
  EXPECT_TRUE(ValidateOutput(graph, reference, actual, loose).ok());
}

TEST(ValidateOutputTest, SsspInfinityMustMatch) {
  Graph graph = MakeDirectedPath(2);
  auto reference =
      DoubleOutput(Algorithm::kSssp, {0.0, kUnreachableDistance});
  auto matching =
      DoubleOutput(Algorithm::kSssp, {0.0, kUnreachableDistance});
  EXPECT_TRUE(ValidateOutput(graph, reference, matching).ok());
  auto wrong = DoubleOutput(Algorithm::kSssp, {0.0, 1e300});
  EXPECT_FALSE(ValidateOutput(graph, reference, wrong).ok());
}

TEST(ValidateOutputTest, CdlpRequiresExactLabels) {
  Graph graph = MakeDirectedPath(2);
  auto reference = IntOutput(Algorithm::kCdlp, {4, 4});
  auto relabelled = IntOutput(Algorithm::kCdlp, {7, 7});
  // CDLP is deterministic: a consistent relabelling is NOT acceptable.
  EXPECT_FALSE(ValidateOutput(graph, reference, relabelled).ok());
}

TEST(FormatOutputTest, IntOutputUsesExternalIds) {
  Graph graph = ga::testing::MakeGraph(Directedness::kDirected, {{10, 20}});
  auto output = IntOutput(Algorithm::kBfs, {0, 1});
  EXPECT_EQ(FormatOutput(graph, output), "10 0\n20 1\n");
}

TEST(FormatOutputTest, DoubleOutputFormatted) {
  Graph graph = ga::testing::MakeGraph(Directedness::kDirected, {{1, 2}});
  auto output = DoubleOutput(Algorithm::kPageRank, {0.5, 0.25});
  EXPECT_EQ(FormatOutput(graph, output), "1 0.5\n2 0.25\n");
}

}  // namespace
}  // namespace ga
