// Property-based tests: algorithm invariants that must hold on *any*
// graph, swept over a parameterised family of random R-MAT and social
// graphs (directed/undirected, several densities and seeds).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "algo/reference.h"
#include "datagen/graph500.h"
#include "datagen/socialnet.h"

namespace ga {
namespace {

// (generator, directed, edges, seed)
using PropertyParam = std::tuple<std::string, bool, int, int>;

class AlgorithmPropertyTest
    : public ::testing::TestWithParam<PropertyParam> {
 protected:
  static Graph MakeGraph(const PropertyParam& param) {
    const auto& [family, directed, edges, seed] = param;
    if (family == "rmat") {
      datagen::Graph500Config config;
      config.scale = 10;
      config.num_edges = edges;
      config.weighted = true;
      config.directedness = directed ? Directedness::kDirected
                                     : Directedness::kUndirected;
      config.seed = static_cast<std::uint64_t>(seed);
      auto graph = datagen::GenerateGraph500(config);
      EXPECT_TRUE(graph.ok());
      return std::move(graph).value();
    }
    datagen::SocialNetConfig config;
    config.num_persons = 500;
    config.avg_degree = 2.0 * edges / 500.0;
    config.seed = static_cast<std::uint64_t>(seed);
    auto network = datagen::GenerateSocialNetwork(config);
    EXPECT_TRUE(network.ok());
    return std::move(network->graph);
  }
};

// BFS: hop counts along any edge differ by at most one in the forward
// direction; the source has hop 0 and every reachable hop is positive.
TEST_P(AlgorithmPropertyTest, BfsLevelsAreConsistent) {
  Graph graph = MakeGraph(GetParam());
  const VertexId source = graph.ExternalId(0);
  auto bfs = reference::Bfs(graph, source);
  ASSERT_TRUE(bfs.ok());
  const auto& hops = bfs->int_values;
  EXPECT_EQ(hops[graph.IndexOf(source)], 0);
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    if (hops[v] == kUnreachableHops) continue;
    for (VertexIndex u : graph.OutNeighbors(v)) {
      // u is reachable via v with one extra hop.
      ASSERT_NE(hops[u], kUnreachableHops);
      EXPECT_LE(hops[u], hops[v] + 1);
    }
  }
}

// BFS: a vertex with hop h > 0 must have an in-neighbour with hop h - 1
// (there is an actual shortest path).
TEST_P(AlgorithmPropertyTest, BfsHopsHaveParents) {
  Graph graph = MakeGraph(GetParam());
  auto bfs = reference::Bfs(graph, graph.ExternalId(0));
  ASSERT_TRUE(bfs.ok());
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    const std::int64_t h = bfs->int_values[v];
    if (h == kUnreachableHops || h == 0) continue;
    bool found_parent = false;
    for (VertexIndex u : graph.InNeighbors(v)) {
      if (bfs->int_values[u] == h - 1) {
        found_parent = true;
        break;
      }
    }
    EXPECT_TRUE(found_parent) << "vertex " << graph.ExternalId(v);
  }
}

// PageRank: ranks are positive and sum to 1 (dangling mass included).
TEST_P(AlgorithmPropertyTest, PageRankIsAProbabilityVector) {
  Graph graph = MakeGraph(GetParam());
  auto pr = reference::PageRank(graph, 15, 0.85);
  ASSERT_TRUE(pr.ok());
  double sum = 0.0;
  for (double rank : pr->double_values) {
    EXPECT_GT(rank, 0.0);
    sum += rank;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// PageRank: every vertex is bounded below by the teleport mass.
TEST_P(AlgorithmPropertyTest, PageRankTeleportFloor) {
  Graph graph = MakeGraph(GetParam());
  auto pr = reference::PageRank(graph, 15, 0.85);
  ASSERT_TRUE(pr.ok());
  const double floor =
      (1.0 - 0.85) / static_cast<double>(graph.num_vertices());
  for (double rank : pr->double_values) {
    EXPECT_GE(rank, floor * (1.0 - 1e-12));
  }
}

// WCC: the endpoints of every edge share a component, and components are
// labelled by their smallest member id.
TEST_P(AlgorithmPropertyTest, WccIsClosedOverEdges) {
  Graph graph = MakeGraph(GetParam());
  auto wcc = reference::Wcc(graph);
  ASSERT_TRUE(wcc.ok());
  for (const Edge& edge : graph.edges()) {
    EXPECT_EQ(wcc->int_values[edge.source], wcc->int_values[edge.target]);
  }
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_LE(wcc->int_values[v], graph.ExternalId(v));
  }
}

// WCC agrees with BFS reachability: everything BFS reaches from the
// source lies in the source's component.
TEST_P(AlgorithmPropertyTest, WccContainsBfsReachableSet) {
  Graph graph = MakeGraph(GetParam());
  const VertexId source = graph.ExternalId(0);
  auto bfs = reference::Bfs(graph, source);
  auto wcc = reference::Wcc(graph);
  ASSERT_TRUE(bfs.ok());
  ASSERT_TRUE(wcc.ok());
  const std::int64_t component = wcc->int_values[graph.IndexOf(source)];
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    if (bfs->int_values[v] != kUnreachableHops) {
      EXPECT_EQ(wcc->int_values[v], component);
    }
  }
}

// CDLP: deterministic, and after one iteration every label is either the
// vertex's own id (isolated) or the id of some neighbour.
TEST_P(AlgorithmPropertyTest, CdlpDeterministicAndLocal) {
  Graph graph = MakeGraph(GetParam());
  auto a = reference::Cdlp(graph, 5);
  auto b = reference::Cdlp(graph, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->int_values, b->int_values);

  auto one = reference::Cdlp(graph, 1);
  ASSERT_TRUE(one.ok());
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    const std::int64_t label = one->int_values[v];
    if (label == graph.ExternalId(v)) continue;
    bool is_neighbor_label = false;
    for (VertexIndex u : graph.OutNeighbors(v)) {
      if (graph.ExternalId(u) == label) is_neighbor_label = true;
    }
    for (VertexIndex u : graph.InNeighbors(v)) {
      if (graph.ExternalId(u) == label) is_neighbor_label = true;
    }
    EXPECT_TRUE(is_neighbor_label) << "vertex " << graph.ExternalId(v);
  }
}

// LCC: values lie in [0, 1]; degree < 2 vertices score exactly 0.
TEST_P(AlgorithmPropertyTest, LccBounded) {
  Graph graph = MakeGraph(GetParam());
  auto lcc = reference::Lcc(graph);
  ASSERT_TRUE(lcc.ok());
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_GE(lcc->double_values[v], 0.0);
    EXPECT_LE(lcc->double_values[v], 1.0 + 1e-12);
    const EdgeIndex degree = graph.OutDegree(v) + (graph.is_directed()
                                                       ? graph.InDegree(v)
                                                       : 0);
    if (degree < 2) EXPECT_DOUBLE_EQ(lcc->double_values[v], 0.0);
  }
}

// SSSP: the relaxation fixpoint — no edge can improve any distance — and
// SSSP distances are consistent with BFS reachability.
TEST_P(AlgorithmPropertyTest, SsspIsARelaxationFixpoint) {
  Graph graph = MakeGraph(GetParam());
  if (!graph.is_weighted()) GTEST_SKIP();
  const VertexId source = graph.ExternalId(0);
  auto sssp = reference::Sssp(graph, source);
  auto bfs = reference::Bfs(graph, source);
  ASSERT_TRUE(sssp.ok());
  ASSERT_TRUE(bfs.ok());
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    const double dv = sssp->double_values[v];
    // Reachability agrees with BFS.
    EXPECT_EQ(std::isinf(dv), bfs->int_values[v] == kUnreachableHops);
    if (std::isinf(dv)) continue;
    const auto neighbors = graph.OutNeighbors(v);
    const auto weights = graph.OutWeights(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      EXPECT_LE(sssp->double_values[neighbors[i]], dv + weights[i] + 1e-9);
    }
  }
}

std::string PropertyParamName(
    const ::testing::TestParamInfo<PropertyParam>& info) {
  const auto& [family, directed, edges, seed] = info.param;
  return family + (directed ? "_directed_" : "_undirected_") +
         std::to_string(edges) + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmPropertyTest,
    ::testing::Values(
        PropertyParam{"rmat", false, 2000, 1},
        PropertyParam{"rmat", false, 8000, 2},
        PropertyParam{"rmat", true, 2000, 3},
        PropertyParam{"rmat", true, 8000, 4},
        PropertyParam{"social", false, 3000, 5},
        PropertyParam{"social", false, 6000, 6}),
    PropertyParamName);

}  // namespace
}  // namespace ga
