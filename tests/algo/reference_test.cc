// Hand-computed correctness tests for the six reference algorithms.
#include "algo/reference.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "testing/graph_fixtures.h"

namespace ga {
namespace {

using ::ga::testing::MakeClique;
using ::ga::testing::MakeDirectedPath;
using ::ga::testing::MakeGraph;
using ::ga::testing::MakeStar;
using ::ga::testing::MakeUndirectedCycle;

// ---------- BFS ----------

TEST(BfsReferenceTest, DirectedPathHops) {
  Graph graph = MakeDirectedPath(5);
  auto output = reference::Bfs(graph, 0);
  ASSERT_TRUE(output.ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(output->int_values[graph.IndexOf(i)], i);
  }
}

TEST(BfsReferenceTest, DirectedEdgesNotFollowedBackwards) {
  Graph graph = MakeDirectedPath(4);
  auto output = reference::Bfs(graph, 2);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->int_values[graph.IndexOf(2)], 0);
  EXPECT_EQ(output->int_values[graph.IndexOf(3)], 1);
  EXPECT_EQ(output->int_values[graph.IndexOf(0)], kUnreachableHops);
  EXPECT_EQ(output->int_values[graph.IndexOf(1)], kUnreachableHops);
}

TEST(BfsReferenceTest, UndirectedCycleSymmetric) {
  Graph graph = MakeUndirectedCycle(6);
  auto output = reference::Bfs(graph, 0);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->int_values[graph.IndexOf(3)], 3);  // opposite side
  EXPECT_EQ(output->int_values[graph.IndexOf(5)], 1);  // backwards edge
}

TEST(BfsReferenceTest, UnknownSourceRejected) {
  Graph graph = MakeDirectedPath(3);
  auto output = reference::Bfs(graph, 99);
  EXPECT_FALSE(output.ok());
}

TEST(BfsReferenceTest, IsolatedVertexUnreachable) {
  Graph graph = MakeGraph(Directedness::kDirected, {{0, 1}}, {42});
  auto output = reference::Bfs(graph, 0);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->int_values[graph.IndexOf(42)], kUnreachableHops);
}

// ---------- PageRank ----------

TEST(PageRankReferenceTest, SumsToOne) {
  Graph graph = MakeGraph(Directedness::kDirected,
                          {{0, 1}, {1, 2}, {2, 0}, {0, 2}, {3, 0}});
  auto output = reference::PageRank(graph, 30, 0.85);
  ASSERT_TRUE(output.ok());
  double sum = std::accumulate(output->double_values.begin(),
                               output->double_values.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankReferenceTest, CycleIsUniform) {
  Graph graph = MakeGraph(Directedness::kDirected,
                          {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  auto output = reference::PageRank(graph, 25, 0.85);
  ASSERT_TRUE(output.ok());
  for (double rank : output->double_values) {
    EXPECT_NEAR(rank, 0.25, 1e-12);
  }
}

TEST(PageRankReferenceTest, SinkAccumulatesMoreRank) {
  // 0 -> 2, 1 -> 2: vertex 2 (a dangling sink) must outrank the sources.
  Graph graph = MakeGraph(Directedness::kDirected, {{0, 2}, {1, 2}});
  auto output = reference::PageRank(graph, 20, 0.85);
  ASSERT_TRUE(output.ok());
  EXPECT_GT(output->double_values[graph.IndexOf(2)],
            output->double_values[graph.IndexOf(0)]);
  double sum = std::accumulate(output->double_values.begin(),
                               output->double_values.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);  // dangling mass is redistributed
}

TEST(PageRankReferenceTest, ZeroIterationsIsUniformInitial) {
  Graph graph = MakeDirectedPath(4);
  auto output = reference::PageRank(graph, 0, 0.85);
  ASSERT_TRUE(output.ok());
  for (double rank : output->double_values) EXPECT_DOUBLE_EQ(rank, 0.25);
}

TEST(PageRankReferenceTest, RejectsBadDamping) {
  Graph graph = MakeDirectedPath(3);
  EXPECT_FALSE(reference::PageRank(graph, 10, 1.5).ok());
  EXPECT_FALSE(reference::PageRank(graph, -1, 0.85).ok());
}

// ---------- WCC ----------

TEST(WccReferenceTest, TwoComponents) {
  Graph graph = MakeGraph(Directedness::kUndirected,
                          {{0, 1}, {1, 2}, {10, 11}});
  auto output = reference::Wcc(graph);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->int_values[graph.IndexOf(0)], 0);
  EXPECT_EQ(output->int_values[graph.IndexOf(2)], 0);
  EXPECT_EQ(output->int_values[graph.IndexOf(10)], 10);
  EXPECT_EQ(output->int_values[graph.IndexOf(11)], 10);
}

TEST(WccReferenceTest, DirectionIgnored) {
  // 0 -> 1 <- 2: weakly connected even though not strongly.
  Graph graph = MakeGraph(Directedness::kDirected, {{0, 1}, {2, 1}});
  auto output = reference::Wcc(graph);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->int_values[graph.IndexOf(2)], 0);
}

TEST(WccReferenceTest, IsolatedVertexIsOwnComponent) {
  Graph graph = MakeGraph(Directedness::kUndirected, {{0, 1}}, {7});
  auto output = reference::Wcc(graph);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->int_values[graph.IndexOf(7)], 7);
}

TEST(WccReferenceTest, LabelIsSmallestExternalIdInComponent) {
  Graph graph = MakeGraph(Directedness::kUndirected, {{30, 20}, {20, 25}});
  auto output = reference::Wcc(graph);
  ASSERT_TRUE(output.ok());
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(output->int_values[v], 20);
  }
}

// ---------- CDLP ----------

TEST(CdlpReferenceTest, TwoCliquesSeparate) {
  // Two triangles joined by one bridge edge: labels converge per-clique.
  Graph graph = MakeGraph(
      Directedness::kUndirected,
      {{0, 1}, {1, 2}, {0, 2}, {10, 11}, {11, 12}, {10, 12}, {2, 10}});
  auto output = reference::Cdlp(graph, 10);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->int_values[graph.IndexOf(0)],
            output->int_values[graph.IndexOf(1)]);
  EXPECT_EQ(output->int_values[graph.IndexOf(10)],
            output->int_values[graph.IndexOf(12)]);
}

TEST(CdlpReferenceTest, SingleIterationTakesSmallestNeighborLabel) {
  // Star: after one iteration every leaf adopts the hub's label or the
  // smallest leaf label; hub (id 0) has all leaves as neighbours, each with
  // a distinct label, so it takes the smallest (id 1).
  Graph graph = MakeStar(5);
  auto output = reference::Cdlp(graph, 1);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->int_values[graph.IndexOf(0)], 1);
  for (int leaf = 1; leaf < 5; ++leaf) {
    EXPECT_EQ(output->int_values[graph.IndexOf(leaf)], 0);
  }
}

TEST(CdlpReferenceTest, ZeroIterationsKeepsInitialLabels) {
  Graph graph = MakeUndirectedCycle(4);
  auto output = reference::Cdlp(graph, 0);
  ASSERT_TRUE(output.ok());
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(output->int_values[v], graph.ExternalId(v));
  }
}

TEST(CdlpReferenceTest, DeterministicTieBreakPicksSmallestLabel) {
  // Vertex 2 sees labels {0, 1} with equal frequency -> picks 0.
  Graph graph = MakeGraph(Directedness::kUndirected, {{0, 2}, {1, 2}});
  auto output = reference::Cdlp(graph, 1);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->int_values[graph.IndexOf(2)], 0);
}

TEST(CdlpReferenceTest, DirectedCountsBothDirections) {
  // 1 -> 0 and 1 <- 2, 1 <- 3 ... the reciprocal pair (1,4),(4,1) gives
  // label 4 two votes at vertex 1, beating single-vote labels.
  Graph graph = MakeGraph(Directedness::kDirected,
                          {{1, 4}, {4, 1}, {0, 1}, {2, 1}});
  auto output = reference::Cdlp(graph, 1);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->int_values[graph.IndexOf(1)], 4);
}

// ---------- LCC ----------

TEST(LccReferenceTest, CliqueIsFullyClustered) {
  Graph graph = MakeClique(5);
  auto output = reference::Lcc(graph);
  ASSERT_TRUE(output.ok());
  for (double lcc : output->double_values) EXPECT_DOUBLE_EQ(lcc, 1.0);
}

TEST(LccReferenceTest, StarHasZeroClustering) {
  Graph graph = MakeStar(6);
  auto output = reference::Lcc(graph);
  ASSERT_TRUE(output.ok());
  for (double lcc : output->double_values) EXPECT_DOUBLE_EQ(lcc, 0.0);
}

TEST(LccReferenceTest, TriangleWithTail) {
  // Triangle 0-1-2 plus edge 2-3.
  Graph graph = MakeGraph(Directedness::kUndirected,
                          {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  auto output = reference::Lcc(graph);
  ASSERT_TRUE(output.ok());
  EXPECT_DOUBLE_EQ(output->double_values[graph.IndexOf(0)], 1.0);
  EXPECT_DOUBLE_EQ(output->double_values[graph.IndexOf(1)], 1.0);
  // Vertex 2 has neighbours {0,1,3}; only pair (0,1) is linked:
  // undirected counting = 2 links / (3*2) = 1/3.
  EXPECT_NEAR(output->double_values[graph.IndexOf(2)], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(output->double_values[graph.IndexOf(3)], 0.0);
}

TEST(LccReferenceTest, DirectedTriangleCountsDirectedLinks) {
  // Directed cycle 0->1->2->0. N(v) = {other two} for each v; among the
  // two neighbours exactly one directed edge exists -> 1/(2*1) = 0.5.
  Graph graph = MakeGraph(Directedness::kDirected, {{0, 1}, {1, 2}, {2, 0}});
  auto output = reference::Lcc(graph);
  ASSERT_TRUE(output.ok());
  for (double lcc : output->double_values) EXPECT_DOUBLE_EQ(lcc, 0.5);
}

TEST(LccReferenceTest, DegreeOneVertexScoresZero) {
  Graph graph = MakeGraph(Directedness::kUndirected, {{0, 1}});
  auto output = reference::Lcc(graph);
  ASSERT_TRUE(output.ok());
  EXPECT_DOUBLE_EQ(output->double_values[0], 0.0);
  EXPECT_DOUBLE_EQ(output->double_values[1], 0.0);
}

// ---------- SSSP ----------

TEST(SsspReferenceTest, WeightedPathDistances) {
  Graph graph = MakeGraph(Directedness::kDirected,
                          {{0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 10.0}}, {},
                          /*weighted=*/true);
  auto output = reference::Sssp(graph, 0);
  ASSERT_TRUE(output.ok());
  EXPECT_DOUBLE_EQ(output->double_values[graph.IndexOf(0)], 0.0);
  EXPECT_DOUBLE_EQ(output->double_values[graph.IndexOf(1)], 2.0);
  EXPECT_DOUBLE_EQ(output->double_values[graph.IndexOf(2)], 5.0);  // via 1
}

TEST(SsspReferenceTest, UnreachableIsInfinity) {
  Graph graph = MakeGraph(Directedness::kDirected, {{0, 1, 1.0}}, {9},
                          /*weighted=*/true);
  auto output = reference::Sssp(graph, 0);
  ASSERT_TRUE(output.ok());
  EXPECT_TRUE(std::isinf(output->double_values[graph.IndexOf(9)]));
}

TEST(SsspReferenceTest, RequiresWeightedGraph) {
  Graph graph = MakeDirectedPath(3);
  auto output = reference::Sssp(graph, 0);
  EXPECT_FALSE(output.ok());
  EXPECT_EQ(output.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SsspReferenceTest, UndirectedEdgesUsableBothWays) {
  Graph graph = MakeGraph(Directedness::kUndirected, {{0, 1, 5.0}}, {},
                          /*weighted=*/true);
  auto output = reference::Sssp(graph, 1);
  ASSERT_TRUE(output.ok());
  EXPECT_DOUBLE_EQ(output->double_values[graph.IndexOf(0)], 5.0);
}

// ---------- Dispatch ----------

TEST(RunDispatchTest, RunsEveryAlgorithm) {
  Graph graph = MakeGraph(Directedness::kUndirected,
                          {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}}, {},
                          /*weighted=*/true);
  AlgorithmParams params;
  params.source_vertex = 0;
  for (Algorithm algorithm : kAllAlgorithms) {
    auto output = reference::Run(graph, algorithm, params);
    ASSERT_TRUE(output.ok()) << AlgorithmName(algorithm) << ": "
                             << output.status().ToString();
    EXPECT_EQ(output->size(), 3u) << AlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace ga
