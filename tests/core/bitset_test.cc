#include "core/bitset.h"

#include <gtest/gtest.h>

#include <vector>

namespace ga {
namespace {

TEST(BitsetTest, StartsClear) {
  Bitset bits(200);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_FALSE(bits.Any());
  for (std::size_t i = 0; i < 200; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(BitsetTest, SetAndTestAcrossWordBoundaries) {
  Bitset bits(130);
  for (std::size_t i : {0u, 63u, 64u, 65u, 127u, 128u, 129u}) bits.Set(i);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(62));
  EXPECT_EQ(bits.Count(), 7u);
}

TEST(BitsetTest, TestAndSetReportsFirstSet) {
  Bitset bits(10);
  EXPECT_TRUE(bits.TestAndSet(3));
  EXPECT_FALSE(bits.TestAndSet(3));
  EXPECT_TRUE(bits.Test(3));
}

TEST(BitsetTest, ResetAndClear) {
  Bitset bits(70);
  bits.Set(1);
  bits.Set(69);
  bits.Reset(1);
  EXPECT_FALSE(bits.Test(1));
  EXPECT_TRUE(bits.Test(69));
  bits.Clear();
  EXPECT_FALSE(bits.Any());
}

TEST(BitsetTest, ForEachSetVisitsInOrder) {
  Bitset bits(300);
  std::vector<std::size_t> expected = {2, 64, 65, 192, 299};
  for (std::size_t i : expected) bits.Set(i);
  std::vector<std::size_t> visited;
  bits.ForEachSet([&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, expected);
}

}  // namespace
}  // namespace ga
