#include "core/bitset.h"

#include <gtest/gtest.h>

#include <vector>

namespace ga {
namespace {

TEST(BitsetTest, StartsClear) {
  Bitset bits(200);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_FALSE(bits.Any());
  for (std::size_t i = 0; i < 200; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(BitsetTest, SetAndTestAcrossWordBoundaries) {
  Bitset bits(130);
  for (std::size_t i : {0u, 63u, 64u, 65u, 127u, 128u, 129u}) bits.Set(i);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(62));
  EXPECT_EQ(bits.Count(), 7u);
}

TEST(BitsetTest, TestAndSetReportsFirstSet) {
  Bitset bits(10);
  EXPECT_TRUE(bits.TestAndSet(3));
  EXPECT_FALSE(bits.TestAndSet(3));
  EXPECT_TRUE(bits.Test(3));
}

TEST(BitsetTest, ResetAndClear) {
  Bitset bits(70);
  bits.Set(1);
  bits.Set(69);
  bits.Reset(1);
  EXPECT_FALSE(bits.Test(1));
  EXPECT_TRUE(bits.Test(69));
  bits.Clear();
  EXPECT_FALSE(bits.Any());
}

TEST(BitsetTest, ForEachSetVisitsInOrder) {
  Bitset bits(300);
  std::vector<std::size_t> expected = {2, 64, 65, 192, 299};
  for (std::size_t i : expected) bits.Set(i);
  std::vector<std::size_t> visited;
  bits.ForEachSet([&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, expected);
}

TEST(BitsetTest, ResizeRetargetsAndClears) {
  Bitset bits(10);
  bits.Set(3);
  bits.Resize(200);
  EXPECT_EQ(bits.size(), 200u);
  EXPECT_FALSE(bits.Test(3));
  bits.Set(199);
  EXPECT_TRUE(bits.Test(199));
  bits.Resize(10);  // shrink keeps working too
  EXPECT_EQ(bits.size(), 10u);
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitsetTest, SetAllMasksTailWord) {
  Bitset bits(70);  // 64 + 6: tail word must be masked
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_TRUE(bits.Test(i));
  // The words view exposes exactly two words, the tail partially set.
  ASSERT_EQ(bits.words().size(), 2u);
  EXPECT_EQ(bits.words()[0], ~std::uint64_t{0});
  EXPECT_EQ(bits.words()[1], (std::uint64_t{1} << 6) - 1);
}

TEST(BitsetTest, ForEachSetInRangeMasksBoundaries) {
  Bitset bits(300);
  const std::vector<std::size_t> set = {0, 63, 64, 127, 128, 200, 299};
  for (std::size_t i : set) bits.Set(i);
  auto collect = [&](std::size_t begin, std::size_t end) {
    std::vector<std::size_t> visited;
    bits.ForEachSetInRange(begin, end,
                           [&](std::size_t i) { visited.push_back(i); });
    return visited;
  };
  EXPECT_EQ(collect(0, 300), set);
  EXPECT_EQ(collect(63, 128), (std::vector<std::size_t>{63, 64, 127}));
  EXPECT_EQ(collect(64, 64), (std::vector<std::size_t>{}));
  EXPECT_EQ(collect(65, 127), (std::vector<std::size_t>{}));
  EXPECT_EQ(collect(299, 300), (std::vector<std::size_t>{299}));
  // Tiling sub-ranges visits every set bit exactly once, in order.
  std::vector<std::size_t> tiled;
  for (std::size_t begin = 0; begin < 300; begin += 37) {
    bits.ForEachSetInRange(begin, std::min<std::size_t>(begin + 37, 300),
                           [&](std::size_t i) { tiled.push_back(i); });
  }
  EXPECT_EQ(tiled, set);
}

}  // namespace
}  // namespace ga
