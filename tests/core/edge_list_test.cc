#include "core/edge_list.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "testing/graph_fixtures.h"

namespace ga {
namespace {

using ::ga::testing::MakeGraph;

TEST(ParseGraphTextTest, ParsesVerticesAndEdges) {
  auto graph = ParseGraphText("1\n2\n3\n4\n", "1 2\n2 3\n",
                              Directedness::kDirected, /*weighted=*/false);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_vertices(), 4);
  EXPECT_EQ(graph->num_edges(), 2);
  EXPECT_EQ(graph->OutDegree(graph->IndexOf(4)), 0);
}

TEST(ParseGraphTextTest, ParsesWeights) {
  auto graph = ParseGraphText("", "10 20 0.5\n20 30 1.25\n",
                              Directedness::kDirected, /*weighted=*/true);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  auto weights = graph->OutWeights(graph->IndexOf(10));
  ASSERT_EQ(weights.size(), 1u);
  EXPECT_DOUBLE_EQ(weights[0], 0.5);
}

TEST(ParseGraphTextTest, SkipsCommentsAndBlankLines) {
  auto graph = ParseGraphText("# header\n1\n\n2\n", "# edges\n1 2\n",
                              Directedness::kDirected, false);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_vertices(), 2);
  EXPECT_EQ(graph->num_edges(), 1);
}

TEST(ParseGraphTextTest, RejectsMalformedVertexLine) {
  auto graph = ParseGraphText("abc\n", "", Directedness::kDirected, false);
  EXPECT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kIoError);
}

TEST(ParseGraphTextTest, RejectsMalformedEdgeLine) {
  auto graph = ParseGraphText("", "1\n", Directedness::kDirected, false);
  EXPECT_FALSE(graph.ok());
}

TEST(ParseGraphTextTest, RejectsMissingWeight) {
  auto graph = ParseGraphText("", "1 2\n", Directedness::kDirected,
                              /*weighted=*/true);
  EXPECT_FALSE(graph.ok());
}

TEST(ParseGraphTextTest, ErrorsCiteSourceNameAndLineNumber) {
  auto graph = ParseGraphText("1\n2\nbogus\n", "", Directedness::kDirected,
                              false, "people.v", "people.e");
  ASSERT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("people.v:3:"),
            std::string::npos)
      << graph.status().ToString();

  auto edges = ParseGraphText("", "1 2\n1 2 3 4\n", Directedness::kDirected,
                              false, "people.v", "people.e");
  ASSERT_FALSE(edges.ok());
  EXPECT_NE(edges.status().message().find("people.e:2:"),
            std::string::npos)
      << edges.status().ToString();
}

TEST(ParseGraphTextTest, RejectsTrailingGarbage) {
  // Extra columns were silently ignored before the ga::store hardening;
  // now every unconsumed non-whitespace byte is an error.
  EXPECT_FALSE(ParseGraphText("1 junk\n", "", Directedness::kDirected,
                              false)
                   .ok());
  EXPECT_FALSE(ParseGraphText("", "1 2 0.5\n", Directedness::kDirected,
                              /*weighted=*/false)
                   .ok());
  EXPECT_FALSE(ParseGraphText("", "1 2 0.5 extra\n",
                              Directedness::kDirected,
                              /*weighted=*/true)
                   .ok());
}

TEST(ParseGraphTextTest, ToleratesCrlfAndMissingFinalNewline) {
  auto graph = ParseGraphText("1\r\n2\r\n3", "1 2\r\n2 3",
                              Directedness::kDirected, false);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_vertices(), 3);
  EXPECT_EQ(graph->num_edges(), 2);
}

TEST(ParseLineTest, VertexAndEdgeLineParsers) {
  VertexId id = 0;
  EXPECT_EQ(ParseVertexLine("42", &id), LineParse::kOk);
  EXPECT_EQ(id, 42);
  EXPECT_EQ(ParseVertexLine("  7 \t", &id), LineParse::kOk);
  EXPECT_EQ(ParseVertexLine("# comment", &id), LineParse::kSkip);
  EXPECT_EQ(ParseVertexLine("", &id), LineParse::kSkip);
  EXPECT_EQ(ParseVertexLine("9 9", &id), LineParse::kMalformed);

  VertexId source = 0;
  VertexId target = 0;
  Weight weight = 0.0;
  EXPECT_EQ(ParseEdgeLine("3 4", false, &source, &target, &weight),
            LineParse::kOk);
  EXPECT_EQ(source, 3);
  EXPECT_EQ(target, 4);
  EXPECT_EQ(weight, 1.0);  // implicit weight on unweighted datasets
  EXPECT_EQ(ParseEdgeLine("3 4 2.5", true, &source, &target, &weight),
            LineParse::kOk);
  EXPECT_EQ(weight, 2.5);
  EXPECT_EQ(ParseEdgeLine("3 4", true, &source, &target, &weight),
            LineParse::kMalformed);
  EXPECT_EQ(ParseEdgeLine("3 4 2.5", false, &source, &target, &weight),
            LineParse::kMalformed);
}

TEST(ParseGraphTextTest, RejectsSelfLoop) {
  auto graph = ParseGraphText("", "3 3\n", Directedness::kDirected, false);
  EXPECT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphFilesTest, WriteThenReadRoundTrips) {
  Graph original = MakeGraph(Directedness::kDirected,
                             {{1, 2, 0.25}, {2, 9, 4.0}, {9, 1, 1.0}},
                             /*extra_vertices=*/{50}, /*weighted=*/true);
  const std::string prefix =
      (std::filesystem::temp_directory_path() / "ga_edge_list_test").string();
  ASSERT_TRUE(WriteGraphFiles(original, prefix).ok());

  auto loaded = ReadGraphFiles(prefix, Directedness::kDirected, true);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_vertices(), original.num_vertices());
  EXPECT_EQ(loaded->num_edges(), original.num_edges());
  for (VertexIndex v = 0; v < original.num_vertices(); ++v) {
    EXPECT_EQ(loaded->ExternalId(v), original.ExternalId(v));
  }
  auto weights = loaded->OutWeights(loaded->IndexOf(1));
  ASSERT_EQ(weights.size(), 1u);
  EXPECT_DOUBLE_EQ(weights[0], 0.25);

  std::remove((prefix + ".v").c_str());
  std::remove((prefix + ".e").c_str());
}

TEST(GraphFilesTest, MissingFileReportsIoError) {
  auto result = ReadGraphFiles("/nonexistent/prefix",
                               Directedness::kDirected, false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ga
