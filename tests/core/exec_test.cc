// Tests for the ga::exec host-parallel substrate: the thread pool, the
// fixed slot decomposition, and the determinism contract (results
// identical at any host thread count).
#include "core/exec/exec.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "core/exec/alloc_stats.h"
#include "core/exec/scratch_pool.h"
#include "core/exec/thread_pool.h"

namespace ga::exec {
namespace {

TEST(ThreadPoolTest, ExecutesEveryChunkExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr std::int64_t kChunks = 1000;
    std::vector<std::atomic<int>> seen(kChunks);
    pool.Execute(kChunks,
                 [&](std::int64_t chunk) { seen[chunk].fetch_add(1); });
    for (std::int64_t chunk = 0; chunk < kChunks; ++chunk) {
      EXPECT_EQ(seen[chunk].load(), 1) << "chunk " << chunk;
    }
  }
}

// A throwing chunk must not std::terminate the process: every chunk
// still runs, and the exception of the LOWEST throwing chunk index is
// rethrown on the submitting thread — so the surfaced failure is the
// same at any thread count.
TEST(ThreadPoolTest, ChunkExceptionPropagatesToSubmittingThread) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr std::int64_t kChunks = 100;
    std::vector<std::atomic<int>> seen(kChunks);
    bool caught = false;
    try {
      pool.Execute(kChunks, [&](std::int64_t chunk) {
        seen[chunk].fetch_add(1);
        if (chunk == 42 || chunk == 77) {
          throw StatusException(Status::Aborted(
              "injected failure in chunk " + std::to_string(chunk)));
        }
      });
    } catch (const StatusException& e) {
      caught = true;
      EXPECT_EQ(e.status().code(), StatusCode::kAborted) << threads;
      // Lowest chunk index wins, regardless of which thread ran it.
      EXPECT_NE(e.status().message().find("chunk 42"), std::string::npos)
          << threads << " threads surfaced: " << e.status().message();
    }
    EXPECT_TRUE(caught) << threads << " threads swallowed the exception";
    for (std::int64_t chunk = 0; chunk < kChunks; ++chunk) {
      EXPECT_EQ(seen[chunk].load(), 1)
          << "chunk " << chunk << " skipped after a peer threw ("
          << threads << " threads)";
    }
  }
}

TEST(ThreadPoolTest, CreateRejectsNonPositiveThreadCounts) {
  for (int bad : {0, -1, -64}) {
    auto pool = ThreadPool::Create(bad);
    ASSERT_FALSE(pool.ok()) << bad;
    EXPECT_EQ(pool.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  auto pool = ThreadPool::Create(2);
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  EXPECT_EQ((*pool)->num_threads(), 2);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::int64_t> sum{0};
    pool.Execute(17, [&](std::int64_t chunk) { sum.fetch_add(chunk); });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ThreadPoolTest, ZeroChunksIsANoOp) {
  ThreadPool pool(2);
  pool.Execute(0, [&](std::int64_t) { FAIL() << "body must not run"; });
}

TEST(ExecContextTest, SlotCountDependsOnlyOnRangeSize) {
  // The decomposition must not depend on any pool: NumSlots is static.
  EXPECT_EQ(ExecContext::NumSlots(0), 0);
  EXPECT_EQ(ExecContext::NumSlots(1), 1);
  EXPECT_EQ(ExecContext::NumSlots(ExecContext::kMinGrain), 1);
  EXPECT_EQ(ExecContext::NumSlots(ExecContext::kMinGrain + 1), 2);
  EXPECT_EQ(ExecContext::NumSlots(1 << 30), ExecContext::kMaxSlots);
}

TEST(ExecContextTest, SlicesTileTheRangeContiguously) {
  const std::int64_t begin = 13;
  const std::int64_t end = 13 + 5000;
  const int num_slots = ExecContext::NumSlots(end - begin);
  std::int64_t cursor = begin;
  for (int slot = 0; slot < num_slots; ++slot) {
    const Slice slice = ExecContext::SliceOf(begin, end, slot, num_slots);
    EXPECT_EQ(slice.begin, cursor);
    EXPECT_LE(slice.begin, slice.end);
    EXPECT_EQ(slice.slot, slot);
    cursor = slice.end;
  }
  EXPECT_EQ(cursor, end);
}

TEST(ParallelForTest, VisitsEveryIndexOnceAtAnyThreadCount) {
  constexpr std::int64_t kRange = 10'000;
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ExecContext ctx(&pool);
    std::vector<std::atomic<int>> seen(kRange);
    parallel_for(ctx, 0, kRange, [&](const Slice& slice) {
      for (std::int64_t i = slice.begin; i < slice.end; ++i) {
        seen[i].fetch_add(1);
      }
    });
    for (std::int64_t i = 0; i < kRange; ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "index " << i;
    }
  }
}

// Floating-point reductions must be bit-identical at any thread count:
// the slot decomposition fixes the summation grouping.
TEST(ParallelReduceTest, FloatSumBitIdenticalAcrossThreadCounts) {
  constexpr std::int64_t kRange = 54321;
  std::vector<double> values(kRange);
  for (std::int64_t i = 0; i < kRange; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto sum_with = [&](ThreadPool* pool) {
    ExecContext ctx(pool);
    return parallel_reduce(
        ctx, 0, kRange, 0.0,
        [&](const Slice& slice, double& acc) {
          for (std::int64_t i = slice.begin; i < slice.end; ++i) {
            acc += values[i];
          }
        },
        [](double& into, double from) { into += from; });
  };
  const double serial = sum_with(nullptr);
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(sum_with(&pool), serial) << threads << " threads";
  }
}

TEST(SlotBuffersTest, DrainReplaysSerialEmissionOrder) {
  constexpr std::int64_t kRange = 2000;
  ThreadPool pool(8);
  ExecContext ctx(&pool);
  SlotBuffers<std::int64_t> buffers;
  buffers.Reset(ExecContext::NumSlots(kRange));
  parallel_for(ctx, 0, kRange, [&](const Slice& slice) {
    for (std::int64_t i = slice.begin; i < slice.end; ++i) {
      if (i % 3 == 0) buffers.buf(slice.slot).push_back(i);
    }
  });
  std::vector<std::int64_t> drained;
  buffers.Drain([&](std::int64_t i) { drained.push_back(i); });
  std::vector<std::int64_t> expected;
  for (std::int64_t i = 0; i < kRange; i += 3) expected.push_back(i);
  EXPECT_EQ(drained, expected);
}

// Equal keys must keep the same (deterministic) permutation at any thread
// count, so downstream dedup picks the same survivor.
TEST(ParallelSortTest, SortsAndIsThreadCountInvariant) {
  struct Item {
    int key;
    int payload;
  };
  constexpr int kCount = 9973;
  std::vector<Item> input(kCount);
  std::uint64_t state = 12345;
  for (int i = 0; i < kCount; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    input[i] = {static_cast<int>(state % 100), i};
  }
  auto less = [](const Item& a, const Item& b) { return a.key < b.key; };

  auto sort_with = [&](ThreadPool* pool) {
    std::vector<Item> items = input;
    ExecContext ctx(pool);
    parallel_sort(ctx, &items, less);
    return items;
  };
  const std::vector<Item> serial = sort_with(nullptr);
  for (int i = 1; i < kCount; ++i) {
    ASSERT_LE(serial[i - 1].key, serial[i].key);
  }
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    const std::vector<Item> sorted = sort_with(&pool);
    for (int i = 0; i < kCount; ++i) {
      ASSERT_EQ(sorted[i].key, serial[i].key) << "position " << i;
      ASSERT_EQ(sorted[i].payload, serial[i].payload) << "position " << i;
    }
  }
}

TEST(ParallelSortTest, HandlesSmallAndEmptyInputs) {
  ThreadPool pool(4);
  ExecContext ctx(&pool);
  std::vector<int> empty;
  parallel_sort(ctx, &empty, std::less<int>{});
  EXPECT_TRUE(empty.empty());
  std::vector<int> tiny = {3, 1, 2};
  parallel_sort(ctx, &tiny, std::less<int>{});
  EXPECT_EQ(tiny, (std::vector<int>{1, 2, 3}));
}

// The scratch overload must produce the same result as the allocating one
// and reuse the caller's partials buffer across calls.
TEST(ParallelReduceTest, ScratchOverloadMatchesAndReusesBuffer) {
  constexpr std::int64_t kRange = 12345;
  ExecContext ctx(nullptr);
  auto map = [](const Slice& slice, std::int64_t& acc) {
    for (std::int64_t i = slice.begin; i < slice.end; ++i) acc += i;
  };
  auto reduce = [](std::int64_t& into, std::int64_t from) { into += from; };
  const std::int64_t expected =
      parallel_reduce(ctx, 0, kRange, std::int64_t{0}, map, reduce);
  std::vector<std::int64_t> scratch;
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(parallel_reduce(ctx, 0, kRange, std::int64_t{0}, map, reduce,
                              &scratch),
              expected);
  }
  EXPECT_EQ(static_cast<int>(scratch.size()),
            ExecContext::NumSlots(kRange));
}

// --- ScratchPool / LabelCounter -----------------------------------------

// LabelCounter must agree with a reference histogram: most frequent label
// wins, ties break to the smallest label.
TEST(LabelCounterTest, MatchesReferenceHistogramOnRandomVotes) {
  LabelCounter counter;
  std::uint64_t state = 99;
  for (int round = 0; round < 200; ++round) {
    counter.Clear();
    std::map<std::int64_t, std::int64_t> reference;
    const int votes = 1 + static_cast<int>(state % 64);
    for (int i = 0; i < votes; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      // Small domain to force ties, shifted to exercise negatives.
      const std::int64_t label = static_cast<std::int64_t>(state % 13) - 4;
      counter.Add(label);
      ++reference[label];
    }
    std::int64_t best_label = 0;
    std::int64_t best_count = -1;
    for (const auto& [label, count] : reference) {
      if (count > best_count) {  // map is ordered: first max = smallest
        best_label = label;
        best_count = count;
      }
    }
    ASSERT_EQ(counter.Mode(), best_label) << "round " << round;
    ASSERT_EQ(counter.size(), static_cast<std::size_t>(votes));
  }
}

TEST(LabelCounterTest, ClearIsReuseNotReallocation) {
  LabelCounter counter;
  // Warm up to the high-water distinct-label count.
  for (int i = 0; i < 100; ++i) counter.Add(i);
  EXPECT_EQ(counter.Mode(), 0);
  const std::uint64_t warm = DataPathAllocEvents();
  for (int round = 0; round < 1000; ++round) {
    counter.Clear();
    EXPECT_TRUE(counter.empty());
    for (int i = 0; i < 100; ++i) counter.Add(i % 7);
    ASSERT_EQ(counter.Mode(), 0);
  }
  EXPECT_EQ(DataPathAllocEvents(), warm)
      << "steady-state Clear/Add cycles grew the counter";
}

// Slot isolation: concurrent slots must never observe each other's
// scratch, and the per-slot results must be bit-identical at any host
// thread count (the exec determinism contract).
TEST(ScratchPoolTest, SlotIsolationAndThreadCountInvariance) {
  constexpr std::int64_t kRange = 4096;
  auto run_with = [&](ThreadPool* pool) {
    ExecContext ctx(pool);
    ScratchPool scratch;
    const int num_slots = ExecContext::NumSlots(kRange);
    scratch.Prepare(num_slots);
    std::vector<std::int64_t> modes(kRange, -1);
    parallel_for(ctx, 0, kRange, [&](const Slice& slice) {
      for (std::int64_t i = slice.begin; i < slice.end; ++i) {
        LabelCounter& counter = scratch.labels(slice.slot);
        // Vertex-dependent vote multiset; mode = i % 17, runner-up i % 5.
        for (int rep = 0; rep < 3; ++rep) counter.Add(i % 17);
        counter.Add(i % 5);
        counter.Add(i % 5);
        std::vector<char>& flags =
            scratch.flags(slice.slot, static_cast<std::size_t>(kRange));
        ASSERT_EQ(flags[static_cast<std::size_t>(i)], 0)
            << "flag array leaked state across acquisitions";
        flags[static_cast<std::size_t>(i)] = 1;
        modes[i] = counter.Mode();
        flags[static_cast<std::size_t>(i)] = 0;  // sparse reset contract
      }
    });
    return modes;
  };
  const std::vector<std::int64_t> serial = run_with(nullptr);
  for (std::int64_t i = 0; i < kRange; ++i) {
    ASSERT_EQ(serial[i], i % 17) << "index " << i;
  }
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ASSERT_EQ(run_with(&pool), serial) << threads << " threads";
  }
}

// Reuse across supersteps: after a warm-up pass, further passes over the
// same shape must not grow any slot's scratch.
TEST(ScratchPoolTest, SteadyStatePassesDoNotGrowScratch) {
  constexpr std::int64_t kRange = 2048;
  ExecContext ctx(nullptr);
  ScratchPool scratch;
  const int num_slots = ExecContext::NumSlots(kRange);
  auto pass = [&] {
    scratch.Prepare(num_slots);
    parallel_for(ctx, 0, kRange, [&](const Slice& slice) {
      for (std::int64_t i = slice.begin; i < slice.end; ++i) {
        LabelCounter& counter = scratch.labels(slice.slot);
        for (int vote = 0; vote < 8; ++vote) counter.Add(vote % 3);
        ASSERT_EQ(counter.Mode(), 0);
        std::vector<std::int64_t>& indices = scratch.indices(slice.slot);
        indices.push_back(i);
      }
    });
  };
  pass();  // warm-up allocates
  const std::uint64_t warm = DataPathAllocEvents();
  for (int superstep = 0; superstep < 20; ++superstep) pass();
  EXPECT_EQ(DataPathAllocEvents(), warm)
      << "steady-state passes grew pooled scratch";
}

// A pre-cancelled token stops a loop before any body runs: every chunk
// throws at its first instruction and the lowest chunk's kCancelled
// surfaces on the submitting thread.
TEST(ParallelForTest, PreCancelledTokenRunsNoBodies) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    ExecContext ctx(&pool);
    CancelToken token;
    token.Cancel("test cancel");
    ctx.set_cancel_token(&token);
    std::atomic<int> bodies{0};
    bool caught = false;
    try {
      parallel_for(ctx, 0, 10'000,
                   [&](const Slice&) { bodies.fetch_add(1); });
    } catch (const StatusException& e) {
      caught = true;
      EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
      EXPECT_EQ(e.status().message(), "test cancel");
    }
    EXPECT_TRUE(caught);
    EXPECT_EQ(bodies.load(), 0);
  }
}

// Cancellation raised DURING a loop stops it within one chunk, not at
// the loop boundary: on the serial path (1 thread, deterministic chunk
// order) a body that cancels at chunk 3 means exactly 4 bodies run and
// the loop surfaces kCancelled.
TEST(ParallelForTest, MidLoopCancelStopsWithinOneChunk) {
  ThreadPool pool(1);
  ExecContext ctx(&pool);
  CancelToken token;
  ctx.set_cancel_token(&token);
  constexpr std::int64_t kRange = 32 * ExecContext::kMinGrain;
  const int num_slots = ExecContext::NumSlots(kRange);
  ASSERT_GT(num_slots, 4);
  std::atomic<int> bodies{0};
  bool caught = false;
  try {
    parallel_for(ctx, 0, kRange, [&](const Slice& slice) {
      bodies.fetch_add(1);
      if (slice.slot == 3) token.Cancel("cancelled at chunk 3");
    });
  } catch (const StatusException& e) {
    caught = true;
    EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(bodies.load(), 4) << "loop ran past the cancelled chunk";
}

// An expired deadline reads as stop_requested and surfaces
// kDeadlineExceeded; parallel_reduce shares parallel_for's check.
TEST(ParallelReduceTest, ExpiredDeadlineSurfacesDeadlineExceeded) {
  ThreadPool pool(2);
  ExecContext ctx(&pool);
  CancelToken token;
  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));  // already past
  ASSERT_TRUE(token.deadline_expired());
  ASSERT_TRUE(token.stop_requested());
  EXPECT_EQ(token.status().code(), StatusCode::kDeadlineExceeded);
  ctx.set_cancel_token(&token);
  bool caught = false;
  try {
    parallel_reduce(
        ctx, 0, 10'000, std::int64_t{0},
        [](const Slice& slice, std::int64_t& acc) {
          acc += slice.end - slice.begin;
        },
        [](std::int64_t& into, const std::int64_t& from) { into += from; });
  } catch (const StatusException& e) {
    caught = true;
    EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_TRUE(caught);
}

// First Cancel wins the reason; later calls are no-ops.
TEST(CancelTokenTest, FirstCancelReasonWins) {
  CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_TRUE(token.status().ok());
  token.Cancel("first");
  token.Cancel("second");
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_EQ(token.status().message(), "first");
}

}  // namespace
}  // namespace ga::exec
