// Tests for the ga::exec host-parallel substrate: the thread pool, the
// fixed slot decomposition, and the determinism contract (results
// identical at any host thread count).
#include "core/exec/exec.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/exec/thread_pool.h"

namespace ga::exec {
namespace {

TEST(ThreadPoolTest, ExecutesEveryChunkExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr std::int64_t kChunks = 1000;
    std::vector<std::atomic<int>> seen(kChunks);
    pool.Execute(kChunks,
                 [&](std::int64_t chunk) { seen[chunk].fetch_add(1); });
    for (std::int64_t chunk = 0; chunk < kChunks; ++chunk) {
      EXPECT_EQ(seen[chunk].load(), 1) << "chunk " << chunk;
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(4);
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::int64_t> sum{0};
    pool.Execute(17, [&](std::int64_t chunk) { sum.fetch_add(chunk); });
    EXPECT_EQ(sum.load(), 17 * 16 / 2);
  }
}

TEST(ThreadPoolTest, ZeroChunksIsANoOp) {
  ThreadPool pool(2);
  pool.Execute(0, [&](std::int64_t) { FAIL() << "body must not run"; });
}

TEST(ExecContextTest, SlotCountDependsOnlyOnRangeSize) {
  // The decomposition must not depend on any pool: NumSlots is static.
  EXPECT_EQ(ExecContext::NumSlots(0), 0);
  EXPECT_EQ(ExecContext::NumSlots(1), 1);
  EXPECT_EQ(ExecContext::NumSlots(ExecContext::kMinGrain), 1);
  EXPECT_EQ(ExecContext::NumSlots(ExecContext::kMinGrain + 1), 2);
  EXPECT_EQ(ExecContext::NumSlots(1 << 30), ExecContext::kMaxSlots);
}

TEST(ExecContextTest, SlicesTileTheRangeContiguously) {
  const std::int64_t begin = 13;
  const std::int64_t end = 13 + 5000;
  const int num_slots = ExecContext::NumSlots(end - begin);
  std::int64_t cursor = begin;
  for (int slot = 0; slot < num_slots; ++slot) {
    const Slice slice = ExecContext::SliceOf(begin, end, slot, num_slots);
    EXPECT_EQ(slice.begin, cursor);
    EXPECT_LE(slice.begin, slice.end);
    EXPECT_EQ(slice.slot, slot);
    cursor = slice.end;
  }
  EXPECT_EQ(cursor, end);
}

TEST(ParallelForTest, VisitsEveryIndexOnceAtAnyThreadCount) {
  constexpr std::int64_t kRange = 10'000;
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ExecContext ctx(&pool);
    std::vector<std::atomic<int>> seen(kRange);
    parallel_for(ctx, 0, kRange, [&](const Slice& slice) {
      for (std::int64_t i = slice.begin; i < slice.end; ++i) {
        seen[i].fetch_add(1);
      }
    });
    for (std::int64_t i = 0; i < kRange; ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "index " << i;
    }
  }
}

// Floating-point reductions must be bit-identical at any thread count:
// the slot decomposition fixes the summation grouping.
TEST(ParallelReduceTest, FloatSumBitIdenticalAcrossThreadCounts) {
  constexpr std::int64_t kRange = 54321;
  std::vector<double> values(kRange);
  for (std::int64_t i = 0; i < kRange; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto sum_with = [&](ThreadPool* pool) {
    ExecContext ctx(pool);
    return parallel_reduce(
        ctx, 0, kRange, 0.0,
        [&](const Slice& slice, double& acc) {
          for (std::int64_t i = slice.begin; i < slice.end; ++i) {
            acc += values[i];
          }
        },
        [](double& into, double from) { into += from; });
  };
  const double serial = sum_with(nullptr);
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(sum_with(&pool), serial) << threads << " threads";
  }
}

TEST(SlotBuffersTest, DrainReplaysSerialEmissionOrder) {
  constexpr std::int64_t kRange = 2000;
  ThreadPool pool(8);
  ExecContext ctx(&pool);
  SlotBuffers<std::int64_t> buffers;
  buffers.Reset(ExecContext::NumSlots(kRange));
  parallel_for(ctx, 0, kRange, [&](const Slice& slice) {
    for (std::int64_t i = slice.begin; i < slice.end; ++i) {
      if (i % 3 == 0) buffers.buf(slice.slot).push_back(i);
    }
  });
  std::vector<std::int64_t> drained;
  buffers.Drain([&](std::int64_t i) { drained.push_back(i); });
  std::vector<std::int64_t> expected;
  for (std::int64_t i = 0; i < kRange; i += 3) expected.push_back(i);
  EXPECT_EQ(drained, expected);
}

// Equal keys must keep the same (deterministic) permutation at any thread
// count, so downstream dedup picks the same survivor.
TEST(ParallelSortTest, SortsAndIsThreadCountInvariant) {
  struct Item {
    int key;
    int payload;
  };
  constexpr int kCount = 9973;
  std::vector<Item> input(kCount);
  std::uint64_t state = 12345;
  for (int i = 0; i < kCount; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    input[i] = {static_cast<int>(state % 100), i};
  }
  auto less = [](const Item& a, const Item& b) { return a.key < b.key; };

  auto sort_with = [&](ThreadPool* pool) {
    std::vector<Item> items = input;
    ExecContext ctx(pool);
    parallel_sort(ctx, &items, less);
    return items;
  };
  const std::vector<Item> serial = sort_with(nullptr);
  for (int i = 1; i < kCount; ++i) {
    ASSERT_LE(serial[i - 1].key, serial[i].key);
  }
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    const std::vector<Item> sorted = sort_with(&pool);
    for (int i = 0; i < kCount; ++i) {
      ASSERT_EQ(sorted[i].key, serial[i].key) << "position " << i;
      ASSERT_EQ(sorted[i].payload, serial[i].payload) << "position " << i;
    }
  }
}

TEST(ParallelSortTest, HandlesSmallAndEmptyInputs) {
  ThreadPool pool(4);
  ExecContext ctx(&pool);
  std::vector<int> empty;
  parallel_sort(ctx, &empty, std::less<int>{});
  EXPECT_TRUE(empty.empty());
  std::vector<int> tiny = {3, 1, 2};
  parallel_sort(ctx, &tiny, std::less<int>{});
  EXPECT_EQ(tiny, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace ga::exec
