// Unit tests for the hybrid frontier (core/exec/frontier.h): sparse/dense
// coherence, push<->pull promotion thresholds, swap/reset reuse without
// allocation, and slot-ordered deterministic population.
#include "core/exec/frontier.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/exec/thread_pool.h"

namespace ga::exec {
namespace {

TEST(FrontierTest, StartsEmpty) {
  Frontier frontier;
  frontier.Init(64);
  EXPECT_TRUE(frontier.empty());
  EXPECT_EQ(frontier.active_count(), 0);
  EXPECT_EQ(frontier.active_degree_sum(), 0);
  EXPECT_EQ(frontier.universe(), 64);
  for (VertexIndex v = 0; v < 64; ++v) EXPECT_FALSE(frontier.Contains(v));
}

TEST(FrontierTest, SeedPopulatesBothRepresentations) {
  Frontier frontier;
  frontier.Init(100);
  frontier.Seed(7, 3);
  frontier.Seed(42, 5);
  frontier.Seed(7, 3);  // duplicate: ignored
  EXPECT_EQ(frontier.active_count(), 2);
  EXPECT_EQ(frontier.active_degree_sum(), 8);
  EXPECT_TRUE(frontier.Contains(7));
  EXPECT_TRUE(frontier.Contains(42));
  EXPECT_FALSE(frontier.Contains(8));
  const std::vector<VertexIndex> active(frontier.active().begin(),
                                        frontier.active().end());
  EXPECT_EQ(active, (std::vector<VertexIndex>{7, 42}));
}

TEST(FrontierTest, SeedAllIsAscendingWithGivenDegreeSum) {
  Frontier frontier;
  frontier.Init(10);
  frontier.SeedAll(123);
  EXPECT_EQ(frontier.active_count(), 10);
  EXPECT_EQ(frontier.active_degree_sum(), 123);
  for (VertexIndex v = 0; v < 10; ++v) {
    EXPECT_TRUE(frontier.Contains(v));
    EXPECT_EQ(frontier.active()[static_cast<std::size_t>(v)], v);
  }
}

TEST(FrontierTest, ActivateBuildsNextSideAndAdvanceSwaps) {
  Frontier frontier;
  frontier.Init(50);
  frontier.Seed(0, 1);
  EXPECT_TRUE(frontier.Activate(3, 10));
  EXPECT_TRUE(frontier.Activate(1, 20));
  EXPECT_FALSE(frontier.Activate(3, 10));  // dedup via dense bitset
  // Next-side state is invisible until Advance.
  EXPECT_FALSE(frontier.Contains(3));
  EXPECT_EQ(frontier.active_count(), 1);
  frontier.Advance();
  EXPECT_EQ(frontier.active_count(), 2);
  EXPECT_EQ(frontier.active_degree_sum(), 30);
  // Activation order, not id order.
  EXPECT_EQ(frontier.active()[0], 3);
  EXPECT_EQ(frontier.active()[1], 1);
  EXPECT_TRUE(frontier.Contains(3));
  EXPECT_FALSE(frontier.Contains(0));  // consumed side was wiped
}

TEST(FrontierTest, AdvanceCyclesReuseCleanSides) {
  Frontier frontier;
  frontier.Init(8);
  frontier.Seed(0, 1);
  // Walk an 8-cycle for 40 steps: both sides are reused many times and
  // must come back clean after every swap.
  VertexIndex expected = 0;
  for (int step = 0; step < 40; ++step) {
    ASSERT_EQ(frontier.active_count(), 1);
    ASSERT_EQ(frontier.active()[0], expected);
    const VertexIndex next = (expected + 1) % 8;
    frontier.Activate(next, 1);
    frontier.Advance();
    expected = next;
    for (VertexIndex v = 0; v < 8; ++v) {
      EXPECT_EQ(frontier.Contains(v), v == expected);
    }
  }
}

TEST(FrontierTest, SteadyStateSwapsDoNotGrowDataPathStorage) {
  Frontier frontier;
  frontier.Init(256);
  frontier.SeedAll(0);
  frontier.Advance();  // dense wipe path
  const std::uint64_t baseline = DataPathAllocEvents();
  for (int round = 0; round < 100; ++round) {
    for (VertexIndex v = 0; v < 256; v += 3) frontier.Activate(v, 2);
    frontier.Advance();
  }
  EXPECT_EQ(DataPathAllocEvents(), baseline)
      << "steady-state Activate/Advance cycles must not grow storage";
}

TEST(FrontierTest, DecideThresholdsMatchDocumentedAlphas) {
  Frontier frontier;
  frontier.Init(1000);
  // degree sum 5 of total 100: 5 * 20 >= 100 -> pull at the default
  // (early-exit) alpha; 4 * 20 < 100 -> push.
  frontier.Seed(1, 5);
  EXPECT_EQ(frontier.Decide(100), TraversalDirection::kPull);
  EXPECT_EQ(frontier.Decide(101), TraversalDirection::kPush);
  // Sweep alpha (no early exit): pull only once the frontier's edge
  // volume covers the whole graph.
  EXPECT_EQ(frontier.Decide(5, Frontier::kPullAlphaSweep),
            TraversalDirection::kPull);
  EXPECT_EQ(frontier.Decide(6, Frontier::kPullAlphaSweep),
            TraversalDirection::kPush);
}

TEST(FrontierTest, DecideDependsOnlyOnFrontierStats) {
  // Two frontiers with identical stats decide identically regardless of
  // how the stats were populated (seeding vs staged commits).
  Frontier a;
  a.Init(100);
  a.Seed(3, 30);
  Frontier b;
  b.Init(100);
  b.PrepareStage(2);
  b.stage(1).push_back(60);
  b.CommitStage([](VertexIndex) { return EdgeIndex{30}; });
  b.Advance();
  ASSERT_EQ(a.active_degree_sum(), b.active_degree_sum());
  for (std::int64_t total : {100, 599, 600, 601, 10000}) {
    EXPECT_EQ(a.Decide(total), b.Decide(total)) << total;
  }
}

TEST(FrontierTest, CommitStageReplaysSlotOrderAndDedupes) {
  Frontier frontier;
  frontier.Init(100);
  frontier.PrepareStage(3);
  // Slot buffers filled "in parallel" (any order); drain order is slot
  // 0, 1, 2 — the serial emission order.
  frontier.stage(2) = {9, 1};
  frontier.stage(0) = {5, 9, 7};
  frontier.stage(1) = {7, 3};
  std::vector<VertexIndex> activated;
  frontier.CommitStage([&](VertexIndex v) {
    activated.push_back(v);
    return EdgeIndex{1};
  });
  frontier.Advance();
  // Duplicates (9, 7) activate once, at their first slot-order position.
  EXPECT_EQ(activated, (std::vector<VertexIndex>{5, 9, 7, 3, 1}));
  EXPECT_EQ(frontier.active_count(), 5);
  EXPECT_EQ(frontier.active_degree_sum(), 5);
  const std::vector<VertexIndex> active(frontier.active().begin(),
                                        frontier.active().end());
  EXPECT_EQ(active, activated);
}

TEST(FrontierTest, CommitStageMatchesSerialEmulation) {
  // Deterministic population: the slot-staged commit must equal a serial
  // loop emitting the same proposals in slice order, for any slot count.
  const VertexIndex n = 500;
  std::vector<VertexIndex> proposals(1000);
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    proposals[i] = static_cast<VertexIndex>((i * 37 + 11) % n);
  }
  std::vector<VertexIndex> serial;
  {
    std::vector<char> seen(n, 0);
    for (VertexIndex v : proposals) {
      if (!seen[v]) {
        seen[v] = 1;
        serial.push_back(v);
      }
    }
  }
  for (int num_slots : {1, 2, 7}) {
    Frontier frontier;
    frontier.Init(n);
    frontier.PrepareStage(num_slots);
    const auto size = static_cast<std::int64_t>(proposals.size());
    for (int slot = 0; slot < num_slots; ++slot) {
      const Slice slice = ExecContext::SliceOf(0, size, slot, num_slots);
      for (std::int64_t i = slice.begin; i < slice.end; ++i) {
        frontier.stage(slot).push_back(proposals[i]);
      }
    }
    frontier.CommitStage([](VertexIndex) { return EdgeIndex{0}; });
    frontier.Advance();
    const std::vector<VertexIndex> active(frontier.active().begin(),
                                          frontier.active().end());
    EXPECT_EQ(active, serial) << "slots=" << num_slots;
  }
}

TEST(FrontierTest, ForEachActiveInRangeIsAscendingAndMasked) {
  Frontier frontier;
  frontier.Init(200);
  // Activation order is deliberately scrambled.
  for (VertexIndex v : {130, 2, 65, 64, 199, 63, 100}) {
    frontier.Seed(v, 0);
  }
  std::vector<VertexIndex> seen;
  frontier.ForEachActiveInRange(0, 200,
                                [&](VertexIndex v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<VertexIndex>{2, 63, 64, 65, 100, 130, 199}));
  // Word-boundary masking: [64, 130) excludes 63, 130.
  seen.clear();
  frontier.ForEachActiveInRange(64, 130,
                                [&](VertexIndex v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<VertexIndex>{64, 65, 100}));
  // Range slices tile the universe exactly.
  seen.clear();
  for (int slot = 0; slot < 7; ++slot) {
    const Slice slice = ExecContext::SliceOf(0, 200, slot, 7);
    frontier.ForEachActiveInRange(slice.begin, slice.end,
                                  [&](VertexIndex v) { seen.push_back(v); });
  }
  EXPECT_EQ(seen, (std::vector<VertexIndex>{2, 63, 64, 65, 100, 130, 199}));
}

}  // namespace
}  // namespace ga::exec
