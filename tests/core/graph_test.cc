#include "core/graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "testing/graph_fixtures.h"

namespace ga {
namespace {

using ::ga::testing::MakeGraph;
using ::ga::testing::WeightedEdge;

TEST(GraphBuilderTest, EmptyGraph) {
  auto graph = std::move(GraphBuilder(Directedness::kDirected)).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_vertices(), 0);
  EXPECT_EQ(graph->num_edges(), 0);
}

TEST(GraphBuilderTest, RemapsSparseExternalIds) {
  Graph graph = MakeGraph(Directedness::kDirected,
                          {{1000, 7}, {7, 52}, {52, 1000}});
  EXPECT_EQ(graph.num_vertices(), 3);
  EXPECT_EQ(graph.num_edges(), 3);
  // External ids are densified in sorted order.
  EXPECT_EQ(graph.ExternalId(0), 7);
  EXPECT_EQ(graph.ExternalId(1), 52);
  EXPECT_EQ(graph.ExternalId(2), 1000);
  EXPECT_EQ(graph.IndexOf(52), 1);
  EXPECT_EQ(graph.IndexOf(9999), kInvalidVertex);
}

TEST(GraphTest, IndexOfBinarySearchHitMissEmpty) {
  // IndexOf is a binary search over the sorted external-id array (the
  // flat index that replaced the id->index hash map).
  Graph graph = MakeGraph(Directedness::kDirected,
                          {{10, 20}, {20, 300}, {300, 4000}});
  // Hits: every id maps to its sorted position.
  EXPECT_EQ(graph.IndexOf(10), 0);
  EXPECT_EQ(graph.IndexOf(20), 1);
  EXPECT_EQ(graph.IndexOf(300), 2);
  EXPECT_EQ(graph.IndexOf(4000), 3);
  // Misses: below the range, between ids, and above the range (the
  // lower_bound probe must not read past the end).
  EXPECT_EQ(graph.IndexOf(-5), kInvalidVertex);
  EXPECT_EQ(graph.IndexOf(15), kInvalidVertex);
  EXPECT_EQ(graph.IndexOf(299), kInvalidVertex);
  EXPECT_EQ(graph.IndexOf(301), kInvalidVertex);
  EXPECT_EQ(graph.IndexOf(99999), kInvalidVertex);
  // Round trip over every vertex.
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_EQ(graph.IndexOf(graph.ExternalId(v)), v);
  }
  // Empty graph: any lookup misses.
  auto empty = std::move(GraphBuilder(Directedness::kDirected)).Build();
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->IndexOf(0), kInvalidVertex);
  EXPECT_EQ(empty->IndexOf(123), kInvalidVertex);
}

TEST(GraphBuilderTest, IsolatedVerticesPreserved) {
  Graph graph =
      MakeGraph(Directedness::kDirected, {{0, 1}}, /*extra_vertices=*/{5, 9});
  EXPECT_EQ(graph.num_vertices(), 4);
  EXPECT_EQ(graph.OutDegree(graph.IndexOf(5)), 0);
  EXPECT_EQ(graph.InDegree(graph.IndexOf(9)), 0);
}

TEST(GraphBuilderTest, DirectedAdjacency) {
  Graph graph = MakeGraph(Directedness::kDirected, {{0, 1}, {0, 2}, {2, 1}});
  const VertexIndex v0 = graph.IndexOf(0);
  const VertexIndex v1 = graph.IndexOf(1);
  const VertexIndex v2 = graph.IndexOf(2);
  EXPECT_EQ(graph.OutDegree(v0), 2);
  EXPECT_EQ(graph.InDegree(v0), 0);
  EXPECT_EQ(graph.OutDegree(v1), 0);
  EXPECT_EQ(graph.InDegree(v1), 2);
  auto neighbors = graph.OutNeighbors(v0);
  EXPECT_EQ(std::vector<VertexIndex>(neighbors.begin(), neighbors.end()),
            (std::vector<VertexIndex>{v1, v2}));
  auto in = graph.InNeighbors(v1);
  EXPECT_EQ(std::vector<VertexIndex>(in.begin(), in.end()),
            (std::vector<VertexIndex>{v0, v2}));
}

TEST(GraphBuilderTest, UndirectedAdjacencyContainsBothDirections) {
  Graph graph = MakeGraph(Directedness::kUndirected, {{0, 1}, {1, 2}});
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_EQ(graph.num_adjacency_entries(), 4);
  const VertexIndex v1 = graph.IndexOf(1);
  EXPECT_EQ(graph.OutDegree(v1), 2);
  EXPECT_EQ(graph.InDegree(v1), 2);
}

TEST(GraphBuilderTest, UndirectedDuplicateReversedEdgeIsDropped) {
  // (0,1) and (1,0) are the same undirected edge.
  Graph graph = MakeGraph(Directedness::kUndirected, {{0, 1}, {1, 0}});
  EXPECT_EQ(graph.num_edges(), 1);
}

TEST(GraphBuilderTest, DirectedReciprocalEdgesAreDistinct) {
  Graph graph = MakeGraph(Directedness::kDirected, {{0, 1}, {1, 0}});
  EXPECT_EQ(graph.num_edges(), 2);
}

TEST(GraphBuilderTest, DropsSelfLoopsUnderDropPolicy) {
  Graph graph = MakeGraph(Directedness::kDirected, {{0, 0}, {0, 1}});
  EXPECT_EQ(graph.num_edges(), 1);
}

TEST(GraphBuilderTest, RejectPolicyFailsOnSelfLoop) {
  GraphBuilder builder(Directedness::kDirected, false,
                       GraphBuilder::AnomalyPolicy::kReject);
  builder.AddEdge(3, 3);
  auto result = std::move(builder).Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectPolicyFailsOnDuplicateEdge) {
  GraphBuilder builder(Directedness::kDirected, false,
                       GraphBuilder::AnomalyPolicy::kReject);
  builder.AddEdge(1, 2);
  builder.AddEdge(1, 2);
  auto result = std::move(builder).Build();
  EXPECT_FALSE(result.ok());
}

TEST(GraphBuilderTest, WeightsFollowAdjacency) {
  Graph graph = MakeGraph(Directedness::kDirected,
                          {{0, 2, 2.5}, {0, 1, 1.5}}, {}, /*weighted=*/true);
  ASSERT_TRUE(graph.is_weighted());
  const VertexIndex v0 = graph.IndexOf(0);
  auto neighbors = graph.OutNeighbors(v0);
  auto weights = graph.OutWeights(v0);
  ASSERT_EQ(neighbors.size(), 2u);
  // Neighbours sorted ascending: 1 then 2.
  EXPECT_EQ(graph.ExternalId(neighbors[0]), 1);
  EXPECT_DOUBLE_EQ(weights[0], 1.5);
  EXPECT_DOUBLE_EQ(weights[1], 2.5);
}

TEST(GraphBuilderTest, InWeightsMatchDirectedEdges) {
  Graph graph = MakeGraph(Directedness::kDirected, {{0, 1, 4.0}, {2, 1, 9.0}},
                          {}, /*weighted=*/true);
  const VertexIndex v1 = graph.IndexOf(1);
  auto sources = graph.InNeighbors(v1);
  auto weights = graph.InWeights(v1);
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(graph.ExternalId(sources[0]), 0);
  EXPECT_DOUBLE_EQ(weights[0], 4.0);
  EXPECT_DOUBLE_EQ(weights[1], 9.0);
}

TEST(GraphBuilderTest, MaxDegreesTracked) {
  Graph graph = testing::MakeStar(11);
  EXPECT_EQ(graph.max_out_degree(), 10);
  EXPECT_EQ(graph.max_in_degree(), 10);
}

TEST(GraphScaleTest, MatchesPaperDatasets) {
  // Values from Table 3/4 of the paper.
  EXPECT_NEAR(GraphScale(2390000, 5020000), 6.9, 1e-9);     // wiki-talk
  EXPECT_NEAR(GraphScale(65600000, 1810000000), 9.3, 1e-9); // friendster
  EXPECT_NEAR(GraphScale(1670000, 102000000), 8.0, 1e-9);   // datagen-100
  EXPECT_NEAR(GraphScale(2400000, 64200000), 7.8, 1e-9);    // graph500-22
}

TEST(GraphTest, EdgesAreCanonicalAndSorted) {
  Graph graph = MakeGraph(Directedness::kUndirected, {{5, 2}, {1, 4}, {4, 1}});
  ASSERT_EQ(graph.num_edges(), 2);
  auto edges = graph.edges();
  for (const Edge& edge : edges) {
    EXPECT_LT(edge.source, edge.target);  // canonical orientation
  }
  EXPECT_LE(edges[0].source, edges[1].source);
}

}  // namespace
}  // namespace ga
