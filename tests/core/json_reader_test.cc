// Tests for core/json_reader: the parser feeding the serve protocol and
// the re-readers of this repo's own JSON artifacts.
#include "core/json_reader.h"

#include <gtest/gtest.h>

#include <string>

#include "core/json_writer.h"

namespace ga::json {
namespace {

TEST(JsonReaderTest, ParsesScalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->bool_value());
  EXPECT_FALSE(Parse("false")->bool_value());
  EXPECT_DOUBLE_EQ(Parse("42")->number(), 42.0);
  EXPECT_DOUBLE_EQ(Parse("-3.5e2")->number(), -350.0);
  EXPECT_EQ(Parse("\"hi\"")->string(), "hi");
}

TEST(JsonReaderTest, ParsesFlatRequestObject) {
  auto doc = Parse(
      R"({"op":"run","id":"r1","priority":3,"validate":true,"deadline_ms":250.5})");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->GetString("op"), "run");
  EXPECT_EQ(doc->GetString("id"), "r1");
  EXPECT_DOUBLE_EQ(doc->GetNumber("priority"), 3.0);
  EXPECT_TRUE(doc->GetBool("validate"));
  EXPECT_DOUBLE_EQ(doc->GetNumber("deadline_ms"), 250.5);
  // Absent keys fall back.
  EXPECT_EQ(doc->GetString("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(doc->GetNumber("missing", 7.0), 7.0);
  EXPECT_FALSE(doc->Has("missing"));
}

TEST(JsonReaderTest, PreservesMemberInsertionOrder) {
  auto doc = Parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->members().size(), 3u);
  EXPECT_EQ(doc->members()[0].first, "z");
  EXPECT_EQ(doc->members()[1].first, "a");
  EXPECT_EQ(doc->members()[2].first, "m");
}

TEST(JsonReaderTest, ParsesNestedArraysAndObjects) {
  auto doc = Parse(R"({"results":[{"eps":1.5},{"eps":2.5}],"empty":[]})");
  ASSERT_TRUE(doc.ok());
  const Value* results = doc->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_TRUE(results->is_array());
  ASSERT_EQ(results->array().size(), 2u);
  EXPECT_DOUBLE_EQ(results->array()[1].GetNumber("eps"), 2.5);
  const Value* empty = doc->Find("empty");
  ASSERT_NE(empty, nullptr);
  EXPECT_TRUE(empty->is_array());
  EXPECT_TRUE(empty->array().empty());
}

TEST(JsonReaderTest, DecodesEscapesAndUnicode) {
  auto doc = Parse(R"("a\"b\\c\nd\tAé")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->string(), "a\"b\\c\nd\tA\xc3\xa9");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  auto emoji = Parse(R"("😀")");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji->string(), "\xf0\x9f\x98\x80");
}

TEST(JsonReaderTest, RejectsMalformedInputWithByteOffset) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "\"unterminated",
        "01", "1.", "-", "nan", "{\"a\":1}trailing", "\"bad\\q\""}) {
    auto doc = Parse(bad);
    EXPECT_FALSE(doc.ok()) << "input: " << bad;
    if (!doc.ok()) {
      EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
      EXPECT_NE(doc.status().message().find("at byte"), std::string::npos)
          << doc.status().ToString();
    }
  }
}

TEST(JsonReaderTest, RejectsPathologicalNesting) {
  // Untrusted socket bytes must not control parser stack depth.
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  auto doc = Parse(deep);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
}

TEST(JsonReaderTest, RoundTripsJsonWriterOutput) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Field("name", "kgs \"quoted\"");
  writer.Field("count", std::int64_t{830000});
  writer.Field("ratio", 2.5);
  writer.Field("ok", true);
  writer.Key("nested");
  writer.BeginArray();
  writer.Value(1.0);
  writer.Value(2.0);
  writer.EndArray();
  writer.EndObject();
  auto doc = Parse(writer.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("name"), "kgs \"quoted\"");
  EXPECT_DOUBLE_EQ(doc->GetNumber("count"), 830000.0);
  EXPECT_DOUBLE_EQ(doc->GetNumber("ratio"), 2.5);
  EXPECT_TRUE(doc->GetBool("ok"));
  ASSERT_TRUE(doc->Find("nested")->is_array());
  EXPECT_EQ(doc->Find("nested")->array().size(), 2u);
}

}  // namespace
}  // namespace ga::json
