#include "core/json_writer.h"

#include <gtest/gtest.h>

namespace ga {
namespace {

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter writer;
  writer.BeginObject().EndObject();
  EXPECT_EQ(writer.str(), "{}");
}

TEST(JsonWriterTest, FlatObject) {
  JsonWriter writer;
  writer.BeginObject()
      .Field("name", "bfs")
      .Field("iterations", std::int64_t{20})
      .Field("ok", true)
      .EndObject();
  EXPECT_EQ(writer.str(), R"({"name":"bfs","iterations":20,"ok":true})");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter writer;
  writer.BeginObject().Key("series").BeginArray();
  writer.Value(std::int64_t{1}).Value(std::int64_t{2});
  writer.BeginObject().Field("x", 1.5).EndObject();
  writer.EndArray().EndObject();
  EXPECT_EQ(writer.str(), R"({"series":[1,2,{"x":1.5}]})");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  JsonWriter writer;
  writer.BeginObject().Field("msg", "a\"b\\c\nd").EndObject();
  EXPECT_EQ(writer.str(), "{\"msg\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriterTest, DoubleRoundTripsPrecision) {
  JsonWriter writer;
  writer.BeginArray().Value(0.1).EndArray();
  EXPECT_EQ(writer.str(), "[0.10000000000000001]");
}

TEST(JsonWriterTest, NullValue) {
  JsonWriter writer;
  writer.BeginObject().Key("missing").Null().EndObject();
  EXPECT_EQ(writer.str(), R"({"missing":null})");
}

}  // namespace
}  // namespace ga
