// Tests for exec::MessageArena: CSR-shaped layout, delivery order,
// combiner folding, double-buffer reuse, and the steady-state
// no-reallocation contract (DESIGN.md §8).
#include "core/exec/message_arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/exec/alloc_stats.h"

namespace ga::exec {
namespace {

TEST(MessageArenaTest, LayoutFollowsCapacityPrefixSums) {
  MessageArena<double> arena;
  const std::vector<std::int64_t> capacities = {2, 0, 3, 1};
  arena.Reset(capacities);
  ASSERT_EQ(arena.num_vertices(), 4);
  for (std::int64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(arena.capacity(v), capacities[static_cast<std::size_t>(v)]);
    EXPECT_TRUE(arena.InboxEmpty(v));
    EXPECT_EQ(arena.InboxSize(v), 0);
  }
  EXPECT_EQ(arena.TotalMessages(), 0u);
}

TEST(MessageArenaTest, PushDeliversInCallOrderAfterAdvance) {
  MessageArena<double> arena;
  arena.Reset(std::vector<std::int64_t>{3, 2});
  arena.Push(0, 1.5);
  arena.Push(1, -2.0);
  arena.Push(0, 2.5);
  // Nothing visible until the superstep boundary.
  EXPECT_TRUE(arena.InboxEmpty(0));
  arena.AdvanceSuperstep();
  ASSERT_EQ(arena.InboxSize(0), 2);
  EXPECT_EQ(arena.Inbox(0)[0], 1.5);
  EXPECT_EQ(arena.Inbox(0)[1], 2.5);
  ASSERT_EQ(arena.InboxSize(1), 1);
  EXPECT_EQ(arena.Inbox(1)[0], -2.0);
  EXPECT_EQ(arena.TotalMessages(), 3u);
}

TEST(MessageArenaTest, SeedCurrentIsVisibleBeforeTheFirstAdvance) {
  MessageArena<double> arena;
  arena.ResetUniform(3, 1);
  arena.SeedCurrent(2, 7.0);
  ASSERT_EQ(arena.InboxSize(2), 1);
  EXPECT_EQ(arena.Inbox(2)[0], 7.0);
  EXPECT_EQ(arena.TotalMessages(), 1u);
}

TEST(MessageArenaTest, CombinerFoldsIntoASingleSlot) {
  MessageArena<double> arena;
  arena.ResetUniform(2, 1);
  auto min_combine = [](double a, double b) { return std::min(a, b); };
  arena.PushCombined(0, 5.0, min_combine);
  arena.PushCombined(0, 3.0, min_combine);
  arena.PushCombined(0, 9.0, min_combine);
  auto sum_combine = [](double a, double b) { return a + b; };
  arena.PushCombined(1, 1.25, sum_combine);
  arena.PushCombined(1, 2.5, sum_combine);
  arena.AdvanceSuperstep();
  ASSERT_EQ(arena.InboxSize(0), 1);
  EXPECT_EQ(arena.Inbox(0)[0], 3.0);
  ASSERT_EQ(arena.InboxSize(1), 1);
  EXPECT_EQ(arena.Inbox(1)[0], 3.75);
}

TEST(MessageArenaTest, AdvanceRecyclesTheConsumedBuffer) {
  MessageArena<double> arena;
  arena.ResetUniform(2, 2);
  arena.Push(0, 1.0);
  arena.AdvanceSuperstep();
  EXPECT_EQ(arena.InboxSize(0), 1);
  // Consume superstep 1, deliver for superstep 2.
  arena.Push(1, 4.0);
  arena.AdvanceSuperstep();
  EXPECT_TRUE(arena.InboxEmpty(0)) << "old inbox must be recycled";
  ASSERT_EQ(arena.InboxSize(1), 1);
  EXPECT_EQ(arena.Inbox(1)[0], 4.0);
  EXPECT_EQ(arena.TotalMessages(), 1u);
}

// The core of the arena's reason to exist: a full message cycle per
// superstep must not touch the heap once the arena is laid out.
TEST(MessageArenaTest, SteadyStateSuperstepsDoNotReallocate) {
  MessageArena<double> arena;
  const std::vector<std::int64_t> capacities = {4, 4, 4, 4, 4, 4, 4, 4};
  arena.Reset(capacities);
  const std::uint64_t after_reset = DataPathAllocEvents();
  for (int superstep = 0; superstep < 50; ++superstep) {
    for (std::int64_t v = 0; v < arena.num_vertices(); ++v) {
      for (int i = 0; i < 4; ++i) {
        arena.Push(v, static_cast<double>(superstep + i));
      }
    }
    arena.AdvanceSuperstep();
    for (std::int64_t v = 0; v < arena.num_vertices(); ++v) {
      ASSERT_EQ(arena.InboxSize(v), 4);
    }
  }
  EXPECT_EQ(DataPathAllocEvents(), after_reset)
      << "steady-state supersteps grew arena storage";
}

TEST(MessageArenaTest, ResetReusesBackingStorageForSmallerLayouts) {
  MessageArena<double> arena;
  arena.ResetUniform(64, 4);
  const std::uint64_t after_large = DataPathAllocEvents();
  // A smaller layout must fit into the existing arrays.
  arena.ResetUniform(16, 2);
  EXPECT_EQ(DataPathAllocEvents(), after_large);
  arena.Push(3, 1.0);
  arena.AdvanceSuperstep();
  EXPECT_EQ(arena.InboxSize(3), 1);
}

// An isolated vertex at the end of the index range has
// offsets_[v] == values_.size(); Inbox must yield a valid empty span
// (pointer arithmetic, not an out-of-range operator[]).
TEST(MessageArenaTest, TrailingZeroCapacityVertexHasValidEmptyInbox) {
  MessageArena<double> arena;
  arena.Reset(std::vector<std::int64_t>{2, 0, 0});
  EXPECT_TRUE(arena.Inbox(1).empty());
  EXPECT_TRUE(arena.Inbox(2).empty());
  arena.Push(0, 1.0);
  arena.AdvanceSuperstep();
  EXPECT_TRUE(arena.Inbox(2).empty());
  // All-isolated layout: the value array itself is empty.
  MessageArena<double> empty_arena;
  empty_arena.Reset(std::vector<std::int64_t>{0, 0});
  EXPECT_TRUE(empty_arena.Inbox(0).empty());
  EXPECT_TRUE(empty_arena.Inbox(1).empty());
}

TEST(MessageArenaTest, EmptyGraphIsFine) {
  MessageArena<double> arena;
  arena.Reset(std::vector<std::int64_t>{});
  EXPECT_EQ(arena.num_vertices(), 0);
  EXPECT_EQ(arena.TotalMessages(), 0u);
  arena.AdvanceSuperstep();
  EXPECT_EQ(arena.TotalMessages(), 0u);
}

}  // namespace
}  // namespace ga::exec
