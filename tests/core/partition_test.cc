#include "core/partition.h"

#include <gtest/gtest.h>

#include <numeric>

#include "testing/graph_fixtures.h"

namespace ga {
namespace {

using ::ga::testing::MakeClique;
using ::ga::testing::MakeGraph;
using ::ga::testing::MakeStar;

Graph MakeChainGraph(int n) {
  std::vector<testing::WeightedEdge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return MakeGraph(Directedness::kDirected, edges);
}

TEST(HashPartitionTest, CoversAllVerticesAndParts) {
  Graph graph = MakeChainGraph(1000);
  VertexPartition partition = HashPartition(graph, 4);
  ASSERT_EQ(partition.part_of.size(), 1000u);
  auto counts = partition.VertexCounts();
  std::int64_t total = std::accumulate(counts.begin(), counts.end(),
                                       std::int64_t{0});
  EXPECT_EQ(total, 1000);
  for (std::int64_t count : counts) {
    // A hash partition of 1000 vertices over 4 parts should be roughly even.
    EXPECT_GT(count, 150);
    EXPECT_LT(count, 350);
  }
}

TEST(HashPartitionTest, DeterministicAcrossCalls) {
  Graph graph = MakeChainGraph(100);
  VertexPartition a = HashPartition(graph, 8);
  VertexPartition b = HashPartition(graph, 8);
  EXPECT_EQ(a.part_of, b.part_of);
}

TEST(BalancedRangePartitionTest, BalancesEdges) {
  // Star graph: hub has degree n-1; balanced ranges must put the hub alone.
  Graph graph = MakeStar(100);
  VertexPartition partition = BalancedRangePartition(graph, 2);
  auto edge_counts = partition.EdgeCounts(graph);
  std::int64_t total = std::accumulate(edge_counts.begin(), edge_counts.end(),
                                       std::int64_t{0});
  EXPECT_EQ(total, graph.num_adjacency_entries());
  // Neither side should hold everything.
  EXPECT_GT(edge_counts[0], 0);
  EXPECT_GT(edge_counts[1], 0);
}

TEST(BalancedRangePartitionTest, RangesAreContiguous) {
  Graph graph = MakeChainGraph(50);
  VertexPartition partition = BalancedRangePartition(graph, 4);
  for (std::size_t v = 1; v < partition.part_of.size(); ++v) {
    EXPECT_GE(partition.part_of[v], partition.part_of[v - 1]);
  }
}

TEST(CutEdgesTest, SinglePartHasNoCut) {
  Graph graph = MakeClique(10);
  VertexPartition partition = HashPartition(graph, 1);
  EXPECT_EQ(partition.CountCutEdges(graph), 0);
}

TEST(GreedyVertexCutTest, EveryEdgeAssignedExactlyOnce) {
  Graph graph = MakeClique(20);
  EdgePartition partition = GreedyVertexCut(graph, 4);
  ASSERT_EQ(partition.part_of_edge.size(),
            static_cast<std::size_t>(graph.num_edges()));
  std::int64_t total = std::accumulate(partition.edge_counts.begin(),
                                       partition.edge_counts.end(),
                                       std::int64_t{0});
  EXPECT_EQ(total, graph.num_edges());
  for (int part : partition.part_of_edge) {
    EXPECT_GE(part, 0);
    EXPECT_LT(part, 4);
  }
}

TEST(GreedyVertexCutTest, ReplicationFactorAtLeastOne) {
  Graph graph = MakeClique(16);
  EdgePartition partition = GreedyVertexCut(graph, 4);
  EXPECT_GE(partition.replication_factor, 1.0);
  EXPECT_LE(partition.replication_factor, 4.0);
  EXPECT_GE(partition.NumMirrors(graph), 0);
}

TEST(GreedyVertexCutTest, SingleMachineNoReplication) {
  Graph graph = MakeClique(8);
  EdgePartition partition = GreedyVertexCut(graph, 1);
  EXPECT_DOUBLE_EQ(partition.replication_factor, 1.0);
  EXPECT_EQ(partition.NumMirrors(graph), 0);
}

TEST(GreedyVertexCutTest, MastersAssignedForIsolatedVertices) {
  Graph graph = MakeGraph(Directedness::kUndirected, {{0, 1}},
                          /*extra_vertices=*/{7, 8, 9});
  EdgePartition partition = GreedyVertexCut(graph, 3);
  for (int master : partition.master_of) {
    EXPECT_GE(master, 0);
    EXPECT_LT(master, 3);
  }
}

TEST(GreedyVertexCutTest, BalancesCliqueLoad) {
  Graph graph = MakeClique(40);
  EdgePartition partition = GreedyVertexCut(graph, 4);
  auto [min_it, max_it] = std::minmax_element(partition.edge_counts.begin(),
                                              partition.edge_counts.end());
  // Greedy vertex-cut keeps load within a generous factor.
  EXPECT_LE(*max_it, *min_it * 3 + 8);
}

}  // namespace
}  // namespace ga
