#include "core/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace ga {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(SplitMix64Test, NextBoundedInRange) {
  SplitMix64 rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(SplitMix64Test, BoundedCoversAllResidues) {
  SplitMix64 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SplitMix64Test, SplitStreamsAreIndependent) {
  SplitMix64 parent(123);
  SplitMix64 child0 = parent.Split(0);
  SplitMix64 child1 = parent.Split(1);
  // Streams must differ from each other and be reproducible.
  SplitMix64 child0_again = parent.Split(0);
  EXPECT_EQ(child0.Next(), child0_again.Next());
  EXPECT_NE(child0.Next(), child1.Next());
}

TEST(Mix64Test, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 4096u);
}

}  // namespace
}  // namespace ga
