#include "core/status.h"

#include <gtest/gtest.h>

namespace ga {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("dataset R9");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "dataset R9");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: dataset R9");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfMemory,
        StatusCode::kDeadlineExceeded, StatusCode::kUnsupported,
        StatusCode::kIoError, StatusCode::kInternal,
        StatusCode::kFailedPrecondition}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
    EXPECT_NE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

Status FailingHelper() { return Status::IoError("disk"); }

Status UsesReturnIfError() {
  GA_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kIoError);
}

Result<int> Double(int x) { return 2 * x; }

Result<int> UsesAssignOrReturn() {
  GA_ASSIGN_OR_RETURN(int doubled, Double(21));
  return doubled;
}

TEST(StatusMacrosTest, AssignOrReturnUnwraps) {
  auto result = UsesAssignOrReturn();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

Result<int> FailingResult() { return Status::NotFound("gone"); }

Result<int> AssignOrReturnPropagates() {
  GA_ASSIGN_OR_RETURN(int value, FailingResult());
  return value;
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesError) {
  auto result = AssignOrReturnPropagates();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ga
