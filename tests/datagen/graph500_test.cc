#include "datagen/graph500.h"

#include <gtest/gtest.h>

#include "datagen/stats.h"

namespace ga::datagen {
namespace {

TEST(Graph500Test, ProducesRequestedEdgeCount) {
  Graph500Config config;
  config.scale = 12;
  config.num_edges = 20000;
  config.seed = 7;
  auto graph = GenerateGraph500(config);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_edges(), 20000);
  EXPECT_EQ(graph->directedness(), Directedness::kUndirected);
}

TEST(Graph500Test, EdgeFactorDefault) {
  Graph500Config config;
  config.scale = 8;
  config.edge_factor = 4;
  auto graph = GenerateGraph500(config);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 4 * 256);
}

TEST(Graph500Test, DeterministicForSeed) {
  Graph500Config config;
  config.scale = 10;
  config.num_edges = 5000;
  config.seed = 42;
  auto a = GenerateGraph500(config);
  auto b = GenerateGraph500(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_edges(), b->num_edges());
  ASSERT_EQ(a->num_vertices(), b->num_vertices());
  auto ea = a->edges();
  auto eb = b->edges();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].source, eb[i].source);
    EXPECT_EQ(ea[i].target, eb[i].target);
  }
}

TEST(Graph500Test, DifferentSeedsDiffer) {
  Graph500Config config;
  config.scale = 10;
  config.num_edges = 5000;
  config.seed = 1;
  auto a = GenerateGraph500(config);
  config.seed = 2;
  auto b = GenerateGraph500(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  int differing = 0;
  auto ea = a->edges();
  auto eb = b->edges();
  for (std::size_t i = 0; i < std::min(ea.size(), eb.size()); ++i) {
    if (ea[i].source != eb[i].source || ea[i].target != eb[i].target) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 1000);
}

TEST(Graph500Test, DegreeDistributionIsSkewed) {
  Graph500Config config;
  config.scale = 13;
  config.num_edges = 1 << 16;
  auto graph = GenerateGraph500(config);
  ASSERT_TRUE(graph.ok());
  DegreeStats stats = ComputeDegreeStats(*graph);
  // R-MAT with a=0.57 yields a power-law-ish distribution: the max degree
  // is far above the mean and the Gini coefficient is substantial.
  EXPECT_GT(static_cast<double>(stats.max), 8.0 * stats.mean);
  EXPECT_GT(stats.gini, 0.3);
}

TEST(Graph500Test, WeightedEdgesInRange) {
  Graph500Config config;
  config.scale = 8;
  config.num_edges = 1000;
  config.weighted = true;
  auto graph = GenerateGraph500(config);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->is_weighted());
  for (const Edge& edge : graph->edges()) {
    EXPECT_GT(edge.weight, 0.0);
    EXPECT_LE(edge.weight, 1.001);
  }
}

TEST(Graph500Test, DirectedVariant) {
  Graph500Config config;
  config.scale = 10;
  config.num_edges = 4000;
  config.directedness = Directedness::kDirected;
  auto graph = GenerateGraph500(config);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->is_directed());
  EXPECT_EQ(graph->num_edges(), 4000);
}

TEST(Graph500Test, NoSelfLoopsOrDuplicates) {
  Graph500Config config;
  config.scale = 9;
  config.num_edges = 3000;
  auto graph = GenerateGraph500(config);
  ASSERT_TRUE(graph.ok());
  auto edges = graph->edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_NE(edges[i].source, edges[i].target);
    if (i > 0) {
      EXPECT_FALSE(edges[i - 1].source == edges[i].source &&
                   edges[i - 1].target == edges[i].target);
    }
  }
}

TEST(Graph500Test, RejectsInvalidScale) {
  Graph500Config config;
  config.scale = 0;
  EXPECT_FALSE(GenerateGraph500(config).ok());
  config.scale = 32;
  EXPECT_FALSE(GenerateGraph500(config).ok());
}

TEST(Graph500Test, RejectsInvalidProbabilities) {
  Graph500Config config;
  config.scale = 8;
  config.a = 0.8;
  config.b = 0.15;
  config.c = 0.15;  // sums over 1
  EXPECT_FALSE(GenerateGraph500(config).ok());
}

TEST(Graph500Test, RejectsOverDenseRequest) {
  Graph500Config config;
  config.scale = 4;  // 16 vertices -> at most 120 undirected edges
  config.num_edges = 10000;
  EXPECT_FALSE(GenerateGraph500(config).ok());
}

TEST(Graph500Test, DoublingScaleRoughlyDoublesSize) {
  // The weak-scaling experiment (Figure 9) relies on each Graph500 scale
  // being twice the previous.
  Graph500Config config;
  config.scale = 10;
  config.num_edges = 10000;
  auto small = GenerateGraph500(config);
  config.scale = 11;
  config.num_edges = 20000;
  auto large = GenerateGraph500(config);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(large->num_edges(), 2 * small->num_edges());
}

}  // namespace
}  // namespace ga::datagen
