#include "datagen/realproxy.h"

#include <gtest/gtest.h>

#include "core/graph.h"
#include "datagen/stats.h"

namespace ga::datagen {
namespace {

TEST(RealProxyTest, CatalogHasSixDatasetsMatchingTable3) {
  auto catalog = RealGraphCatalog();
  ASSERT_EQ(catalog.size(), 6u);
  // Scale values from Table 3.
  const double expected_scales[] = {6.9, 7.3, 7.3, 7.7, 9.3, 9.3};
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_NEAR(GraphScale(catalog[i].paper_vertices,
                           catalog[i].paper_edges),
                expected_scales[i], 0.051)
        << catalog[i].name;
  }
}

TEST(RealProxyTest, FindByIdWorks) {
  auto spec = FindRealGraphSpec("R4");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "dota-league");
  EXPECT_TRUE(spec->weighted);
  EXPECT_FALSE(FindRealGraphSpec("R9").ok());
}

TEST(RealProxyTest, DirectednessMatchesOriginals) {
  EXPECT_EQ(FindRealGraphSpec("R1")->directedness,
            Directedness::kDirected);  // wiki-talk
  EXPECT_EQ(FindRealGraphSpec("R5")->directedness,
            Directedness::kUndirected);  // friendster
  EXPECT_EQ(FindRealGraphSpec("R6")->directedness,
            Directedness::kDirected);  // twitter
}

TEST(RealProxyTest, ProxyMatchesScaledEdgeCount) {
  auto spec = FindRealGraphSpec("R2");
  ASSERT_TRUE(spec.ok());
  auto graph = GenerateRealProxy(*spec, /*scale_divisor=*/1024, /*seed=*/3);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->num_edges(), spec->paper_edges / 1024);
  EXPECT_EQ(graph->directedness(), spec->directedness);
}

TEST(RealProxyTest, DensityRatioRoughlyPreserved) {
  // dota-league is ~40x denser (|E|/|V|) than wiki-talk; the proxies must
  // preserve that contrast (it drives the paper's LCC failures on R4).
  auto wiki = GenerateRealProxy(*FindRealGraphSpec("R1"), 1024, 3);
  auto dota = GenerateRealProxy(*FindRealGraphSpec("R4"), 1024, 3);
  ASSERT_TRUE(wiki.ok());
  ASSERT_TRUE(dota.ok());
  const double wiki_density =
      static_cast<double>(wiki->num_edges()) /
      static_cast<double>(wiki->num_vertices());
  const double dota_density =
      static_cast<double>(dota->num_edges()) /
      static_cast<double>(dota->num_vertices());
  EXPECT_GT(dota_density, 8.0 * wiki_density);
}

TEST(RealProxyTest, WeightedOnlyForDota) {
  for (const RealGraphSpec& spec : RealGraphCatalog()) {
    EXPECT_EQ(spec.weighted, spec.id == "R4") << spec.name;
  }
}

TEST(RealProxyTest, DeterministicForSeed) {
  auto spec = FindRealGraphSpec("R3");
  ASSERT_TRUE(spec.ok());
  auto a = GenerateRealProxy(*spec, 2048, 9);
  auto b = GenerateRealProxy(*spec, 2048, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_vertices(), b->num_vertices());
  EXPECT_EQ(a->num_edges(), b->num_edges());
}

TEST(RealProxyTest, RejectsBadDivisor) {
  auto spec = FindRealGraphSpec("R1");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(GenerateRealProxy(*spec, 0, 1).ok());
}

TEST(RealProxyTest, MinimumSizeFloorApplies) {
  // Even with a huge divisor the proxy stays a usable small graph.
  auto spec = FindRealGraphSpec("R1");
  auto graph = GenerateRealProxy(*spec, 1'000'000'000, 1);
  ASSERT_TRUE(graph.ok());
  EXPECT_GE(graph->num_edges(), 256);
}

}  // namespace
}  // namespace ga::datagen
