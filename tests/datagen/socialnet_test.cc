#include "datagen/socialnet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/stats.h"

namespace ga::datagen {
namespace {

SocialNetConfig SmallConfig() {
  SocialNetConfig config;
  config.num_persons = 4000;
  config.avg_degree = 16.0;
  config.target_clustering = 0.15;
  config.seed = 11;
  return config;
}

TEST(SocialNetTest, ProducesGraphNearTargetDegree) {
  auto network = GenerateSocialNetwork(SmallConfig());
  ASSERT_TRUE(network.ok()) << network.status().ToString();
  const Graph& graph = network->graph;
  EXPECT_EQ(graph.num_vertices(), 4000);
  const double mean_degree =
      2.0 * static_cast<double>(graph.num_edges()) /
      static_cast<double>(graph.num_vertices());
  EXPECT_GT(mean_degree, 8.0);
  EXPECT_LT(mean_degree, 32.0);
}

TEST(SocialNetTest, DeterministicForSeed) {
  auto a = GenerateSocialNetwork(SmallConfig());
  auto b = GenerateSocialNetwork(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.num_edges(), b->graph.num_edges());
  auto ea = a->graph.edges();
  auto eb = b->graph.edges();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea[i].source, eb[i].source);
    ASSERT_EQ(ea[i].target, eb[i].target);
    ASSERT_EQ(ea[i].weight, eb[i].weight);
  }
}

TEST(SocialNetTest, ClusteringKnobIsMonotonic) {
  // The paper's headline Datagen extension: generating graphs with a
  // pre-specified clustering coefficient (Figure 2 contrasts 0.05 / 0.3).
  SocialNetConfig low = SmallConfig();
  low.target_clustering = 0.05;
  SocialNetConfig mid = SmallConfig();
  mid.target_clustering = 0.15;
  SocialNetConfig high = SmallConfig();
  high.target_clustering = 0.30;

  auto graph_low = GenerateSocialNetwork(low);
  auto graph_mid = GenerateSocialNetwork(mid);
  auto graph_high = GenerateSocialNetwork(high);
  ASSERT_TRUE(graph_low.ok());
  ASSERT_TRUE(graph_mid.ok());
  ASSERT_TRUE(graph_high.ok());

  auto cc_low = AverageClusteringCoefficient(graph_low->graph);
  auto cc_mid = AverageClusteringCoefficient(graph_mid->graph);
  auto cc_high = AverageClusteringCoefficient(graph_high->graph);
  ASSERT_TRUE(cc_low.ok());
  ASSERT_TRUE(cc_mid.ok());
  ASSERT_TRUE(cc_high.ok());

  EXPECT_LT(*cc_low, *cc_mid);
  EXPECT_LT(*cc_mid, *cc_high);
  // The knob should land in the right neighbourhood, not just order.
  EXPECT_GT(*cc_high, 0.12);
  EXPECT_LT(*cc_low, 0.12);
}

TEST(SocialNetTest, CommunityAssignmentCoversAllPersons) {
  auto network = GenerateSocialNetwork(SmallConfig());
  ASSERT_TRUE(network.ok());
  ASSERT_EQ(network->community_of.size(), 4000u);
  for (std::int64_t community : network->community_of) {
    EXPECT_GE(community, 0);
  }
  // Consecutive persons share communities (block construction).
  std::int64_t switches = 0;
  for (std::size_t i = 1; i < network->community_of.size(); ++i) {
    if (network->community_of[i] != network->community_of[i - 1]) ++switches;
  }
  EXPECT_GT(switches, 4);                 // more than one community
  EXPECT_LT(switches, 2000);              // communities are blocks
}

TEST(SocialNetTest, DegreeDistributionIsSkewed) {
  auto network = GenerateSocialNetwork(SmallConfig());
  ASSERT_TRUE(network.ok());
  DegreeStats stats = ComputeDegreeStats(network->graph);
  EXPECT_GT(static_cast<double>(stats.max), 2.5 * stats.mean);
}

TEST(SocialNetTest, FlowsProduceIdenticalGraphs) {
  SocialNetConfig old_flow = SmallConfig();
  old_flow.flow = DatagenFlow::kOldSequential;
  SocialNetConfig new_flow = SmallConfig();
  new_flow.flow = DatagenFlow::kNewIndependent;

  auto a = GenerateSocialNetwork(old_flow);
  auto b = GenerateSocialNetwork(new_flow);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Figure 3: the new flow is an execution-plan optimisation; the output
  // graph must be unchanged.
  ASSERT_EQ(a->graph.num_edges(), b->graph.num_edges());
  auto ea = a->graph.edges();
  auto eb = b->graph.edges();
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea[i].source, eb[i].source);
    ASSERT_EQ(ea[i].target, eb[i].target);
  }
}

TEST(SocialNetTest, OldFlowSortsMoreRecords) {
  SocialNetConfig old_flow = SmallConfig();
  old_flow.flow = DatagenFlow::kOldSequential;
  SocialNetConfig new_flow = SmallConfig();
  new_flow.flow = DatagenFlow::kNewIndependent;

  auto a = GenerateSocialNetwork(old_flow);
  auto b = GenerateSocialNetwork(new_flow);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // The old flow re-sorts accumulated edges at every step (Figure 3), so
  // its sort volume must exceed the new flow's per-step sorts; the new
  // flow pays a merge instead, which is cheaper than repeated sorting.
  EXPECT_GT(a->cost.TotalSorted(), b->cost.TotalSorted());
}

TEST(SocialNetTest, EstimateTracksActualCost) {
  SocialNetConfig config = SmallConfig();
  config.num_persons = 8000;
  auto actual = GenerateSocialNetwork(config);
  ASSERT_TRUE(actual.ok());
  GenerationCost estimate = EstimateGenerationCost(config);
  ASSERT_EQ(estimate.steps.size(), actual->cost.steps.size());
  const double actual_sorted =
      static_cast<double>(actual->cost.TotalSorted());
  const double estimated_sorted =
      static_cast<double>(estimate.TotalSorted());
  EXPECT_LT(std::fabs(actual_sorted - estimated_sorted),
            0.25 * actual_sorted)
      << "estimate " << estimated_sorted << " vs actual " << actual_sorted;
}

TEST(SocialNetTest, EstimateScalesSuperlinearlyInOldFlow) {
  SocialNetConfig config = SmallConfig();
  config.flow = DatagenFlow::kOldSequential;
  GenerationCost small = EstimateGenerationCost(config);
  config.num_persons *= 10;
  GenerationCost large = EstimateGenerationCost(config);
  // Old-flow sort volume grows linearly in n here (degree constant), but
  // must be >= 10x; the ratio new/old grows with edge volume.
  EXPECT_GE(large.TotalSorted(), 10 * small.TotalSorted() * 9 / 10);
}

TEST(SocialNetTest, WeightsAttachedWhenRequested) {
  SocialNetConfig config = SmallConfig();
  config.weighted = true;
  auto network = GenerateSocialNetwork(config);
  ASSERT_TRUE(network.ok());
  EXPECT_TRUE(network->graph.is_weighted());
  for (const Edge& edge : network->graph.edges()) {
    EXPECT_GT(edge.weight, 0.0);
  }
}

TEST(SocialNetTest, RejectsInvalidConfig) {
  SocialNetConfig config = SmallConfig();
  config.num_persons = 1;
  EXPECT_FALSE(GenerateSocialNetwork(config).ok());

  config = SmallConfig();
  config.target_clustering = 0.9;
  EXPECT_FALSE(GenerateSocialNetwork(config).ok());

  config = SmallConfig();
  config.correlation_steps = 0;
  EXPECT_FALSE(GenerateSocialNetwork(config).ok());

  config = SmallConfig();
  config.avg_degree = -1;
  EXPECT_FALSE(GenerateSocialNetwork(config).ok());
}

}  // namespace
}  // namespace ga::datagen
