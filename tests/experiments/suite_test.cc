#include "experiments/suite.h"

#include <gtest/gtest.h>

#include <set>

#include "experiments/plan.h"
#include "harness/runner.h"
#include "platforms/platform.h"

namespace ga::experiments {
namespace {

harness::BenchmarkConfig FastConfig() {
  harness::BenchmarkConfig config;
  config.scale_divisor = 16384;
  config.seed = 13;
  return config;
}

// A miniature smoke-like plan exercising baseline + variability + renewal
// on tiny datasets (used by the cross-thread determinism test).
ExperimentPlan TinyPlan() {
  ExperimentPlan plan;
  plan.name = "tiny";
  plan.experiments = {ExperimentKind::kBaseline,
                      ExperimentKind::kVariability,
                      ExperimentKind::kRenewal};
  plan.platforms = {"spmat", "pushpull"};
  plan.datasets = {"R1", "R2"};
  plan.algorithms = {Algorithm::kBfs, Algorithm::kPageRank};
  plan.variability_setups = {{"R2", 1}};
  plan.repetitions = 5;
  plan.renewal_datasets = {"R1", "R2"};
  return plan;
}

TEST(ExperimentKindTest, NamesRoundTrip) {
  for (ExperimentKind kind : kAllExperimentKinds) {
    ExperimentKind parsed;
    ASSERT_TRUE(ParseExperimentKind(ExperimentKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  ExperimentKind ignored;
  EXPECT_FALSE(ParseExperimentKind("nope", &ignored));
}

TEST(PlanPresetTest, LookupAndNames) {
  EXPECT_TRUE(FindPreset("smoke").ok());
  EXPECT_TRUE(FindPreset("paper").ok());
  auto unknown = FindPreset("bogus");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  const std::vector<std::string> names = PresetNames();
  for (const std::string& name : names) {
    EXPECT_TRUE(FindPreset(name).ok()) << name;
  }
}

TEST(PlanPresetTest, PresetsPassValidation) {
  EXPECT_TRUE(ValidatePlan(SmokePlan()).ok());
  EXPECT_TRUE(ValidatePlan(PaperPlan()).ok());
}

TEST(PlanFileTest, ParsesEveryKey) {
  const std::string text = R"(
# full-coverage plan file
name = roundtrip
experiments = baseline, strong-vertical, strong-horizontal, weak-scaling, variability, renewal
platforms = spmat, pushpull
datasets = R1, R2
algorithms = bfs, pr
scaling_algorithms = bfs
vertical_dataset = D300
threads = 1, 2, 4
horizontal_dataset = D1000
machines = 1, 2
weak = G22@1, G23@2
variability = R2@1, D1000@16
repetitions = 7
renewal_datasets = R1
validate = false
)";
  auto plan = ParsePlanText(text);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->name, "roundtrip");
  EXPECT_EQ(plan->experiments.size(), 6u);
  EXPECT_EQ(plan->platforms, (std::vector<std::string>{"spmat", "pushpull"}));
  EXPECT_EQ(plan->datasets, (std::vector<std::string>{"R1", "R2"}));
  EXPECT_EQ(plan->algorithms,
            (std::vector<Algorithm>{Algorithm::kBfs, Algorithm::kPageRank}));
  EXPECT_EQ(plan->scaling_algorithms,
            (std::vector<Algorithm>{Algorithm::kBfs}));
  EXPECT_EQ(plan->vertical_dataset, "D300");
  EXPECT_EQ(plan->thread_counts, (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(plan->horizontal_dataset, "D1000");
  EXPECT_EQ(plan->machine_counts, (std::vector<int>{1, 2}));
  EXPECT_EQ(plan->weak_series,
            (std::vector<WorkloadPoint>{{"G22", 1}, {"G23", 2}}));
  EXPECT_EQ(plan->variability_setups,
            (std::vector<WorkloadPoint>{{"R2", 1}, {"D1000", 16}}));
  EXPECT_EQ(plan->repetitions, 7);
  EXPECT_EQ(plan->renewal_datasets, (std::vector<std::string>{"R1"}));
  EXPECT_FALSE(plan->validate);
}

TEST(PlanFileTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParsePlanText("").ok());
  EXPECT_FALSE(ParsePlanText("no equals sign here").ok());
  EXPECT_FALSE(ParsePlanText("wibble = 3").ok());                // unknown key
  EXPECT_FALSE(ParsePlanText("experiments = frobnicate").ok());  // bad kind
  EXPECT_FALSE(
      ParsePlanText("experiments = baseline\ndatasets = R1\n"
                    "algorithms = quicksort")
          .ok());  // bad algorithm
  EXPECT_FALSE(ParsePlanText("experiments = baseline\ndatasets = R1\n"
                             "algorithms = bfs\nrepetitions = -3")
                   .ok());
  // Values beyond int range must be rejected, not truncated.
  EXPECT_FALSE(ParsePlanText("experiments = baseline\ndatasets = R1\n"
                             "algorithms = bfs\nthreads = 4294967297")
                   .ok());
  EXPECT_FALSE(ParsePlanText("experiments = baseline\ndatasets = R1\n"
                             "algorithms = bfs\nvalidate = maybe")
                   .ok());
  // Structurally incomplete: variability without setups.
  EXPECT_FALSE(ParsePlanText("experiments = variability").ok());
}

TEST(PlanResolveTest, PresetThenFileThenError) {
  EXPECT_TRUE(ResolvePlan("smoke").ok());
  auto missing = ResolvePlan("/nonexistent/plan.txt");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompileScheduleTest, SmokeIsCompleteDeterministicAndUnique) {
  harness::BenchmarkConfig config = FastConfig();
  harness::DatasetRegistry registry(config);
  const ExperimentPlan plan = SmokePlan();

  auto schedule_a = CompileSchedule(plan, registry);
  auto schedule_b = CompileSchedule(plan, registry);
  ASSERT_TRUE(schedule_a.ok()) << schedule_a.status().ToString();
  ASSERT_TRUE(schedule_b.ok());

  // Deterministic: same plan, same catalogue, same job sequence.
  ASSERT_EQ(schedule_a->jobs.size(), schedule_b->jobs.size());
  for (std::size_t i = 0; i < schedule_a->jobs.size(); ++i) {
    EXPECT_EQ(schedule_a->jobs[i].cell_id, schedule_b->jobs[i].cell_id);
  }

  // Complete: every matrix cell exactly once. Smoke = baseline
  // (2 datasets x 2 algorithms x 3 platforms) + variability (1 setup x
  // 3 platforms); renewal compiles to the class-L sweep, not jobs.
  EXPECT_EQ(schedule_a->jobs.size(), 2u * 2u * 3u + 1u * 3u);
  std::set<std::string> cells;
  for (const ScheduledJob& job : schedule_a->jobs) {
    EXPECT_TRUE(cells.insert(job.cell_id).second)
        << "duplicate cell " << job.cell_id;
  }
  EXPECT_TRUE(schedule_a->run_renewal);
  EXPECT_EQ(schedule_a->renewal_datasets,
            (std::vector<std::string>{"R1", "R2"}));
}

TEST(CompileScheduleTest, PaperCoversTheFullMatrix) {
  harness::BenchmarkConfig config = FastConfig();
  harness::DatasetRegistry registry(config);
  const ExperimentPlan plan = PaperPlan();

  auto schedule = CompileSchedule(plan, registry);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();

  const std::size_t all = platform::AllPlatformIds().size();
  const std::size_t distributed = schedule->distributed_platforms.size();
  EXPECT_EQ(schedule->platforms.size(), all);
  EXPECT_GT(distributed, 0u);
  EXPECT_LT(distributed, all);  // nativekernel is single-machine

  std::size_t expected = 0;
  expected += plan.datasets.size() * plan.algorithms.size() * all;
  expected += plan.scaling_algorithms.size() * plan.thread_counts.size() * all;
  expected += plan.scaling_algorithms.size() * plan.machine_counts.size() *
              distributed;
  expected += plan.scaling_algorithms.size() * plan.weak_series.size() *
              distributed;
  for (const WorkloadPoint& point : plan.variability_setups) {
    expected += point.machines > 1 ? distributed : all;
  }
  EXPECT_EQ(schedule->jobs.size(), expected);

  std::set<std::string> cells;
  for (const ScheduledJob& job : schedule->jobs) {
    EXPECT_TRUE(cells.insert(job.cell_id).second)
        << "duplicate cell " << job.cell_id;
  }
  // Renewal with no explicit slice sweeps the full catalogue.
  EXPECT_TRUE(schedule->run_renewal);
  EXPECT_EQ(schedule->renewal_datasets.size(), registry.specs().size());
}

TEST(CompileScheduleTest, UnknownIdsRejected) {
  harness::BenchmarkConfig config = FastConfig();
  harness::DatasetRegistry registry(config);

  ExperimentPlan bad_platform = TinyPlan();
  bad_platform.platforms = {"spmat", "nope"};
  auto a = CompileSchedule(bad_platform, registry);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kNotFound);

  ExperimentPlan bad_dataset = TinyPlan();
  bad_dataset.datasets = {"R1", "R99"};
  auto b = CompileSchedule(bad_dataset, registry);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kNotFound);
}

TEST(CompileScheduleTest, DuplicateIdsRejected) {
  harness::BenchmarkConfig config = FastConfig();
  harness::DatasetRegistry registry(config);

  ExperimentPlan duplicated = TinyPlan();
  duplicated.datasets = {"R1", "R1"};
  auto schedule = CompileSchedule(duplicated, registry);
  ASSERT_FALSE(schedule.ok());
  EXPECT_EQ(schedule.status().code(), StatusCode::kInvalidArgument);
}

TEST(RunSuiteTest, RenewalInfrastructureErrorKeepsJobResults) {
  // At divisor 16384 the D100 Datagen proxy cannot generate (the scaled
  // vertex count falls below the target average degree); a renewal
  // sweeping it must not discard the completed jobs.
  harness::BenchmarkConfig config = FastConfig();
  harness::BenchmarkRunner runner(config);
  ExperimentPlan plan;
  plan.name = "renewal-failure";
  plan.experiments = {ExperimentKind::kBaseline, ExperimentKind::kRenewal};
  plan.platforms = {"spmat"};
  plan.datasets = {"R1"};
  plan.algorithms = {Algorithm::kBfs};
  plan.renewal_datasets = {"R1", "D100"};
  auto result = RunSuite(runner, plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->reports.size(), 1u);
  EXPECT_EQ(result->reports[0].outcome, harness::JobOutcome::kCompleted);
  EXPECT_FALSE(result->renewal.has_value());
  EXPECT_FALSE(result->renewal_failure.empty());
  EXPECT_NE(RenderSuiteReport(*result).find("renewal: sweep failed"),
            std::string::npos);
  EXPECT_NE(SuiteToJson(*result).find("\"renewal_error\":"),
            std::string::npos);
}

// The acceptance gate: the suite's artifacts are bit-identical at any
// host parallelism (exec determinism contract, DESIGN.md §6-§7).
TEST(RunSuiteTest, ArtifactsBitIdenticalAcrossHostJobs) {
  const ExperimentPlan plan = TinyPlan();
  std::string reports[3];
  std::string jsons[3];
  const int jobs_values[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    harness::BenchmarkConfig config = FastConfig();
    config.host_jobs = jobs_values[i];
    harness::BenchmarkRunner runner(config);
    auto result = RunSuite(runner, plan);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    reports[i] = RenderSuiteReport(*result);
    jsons[i] = SuiteToJson(*result);
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
  EXPECT_EQ(jsons[0], jsons[1]);
  EXPECT_EQ(jsons[0], jsons[2]);
}

// The smoke preset must complete under ctest at the default scale.
TEST(RunSuiteTest, SmokePresetCompletesAndEmitsArtifacts) {
  harness::BenchmarkConfig config;  // defaults: divisor 1024, seed 42
  harness::BenchmarkRunner runner(config);
  auto result = RunSuite(runner, SmokePlan());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->reports.size(), result->schedule.jobs.size());
  for (std::size_t i = 0; i < result->reports.size(); ++i) {
    EXPECT_EQ(result->reports[i].outcome, harness::JobOutcome::kCompleted)
        << result->schedule.jobs[i].cell_id << ": "
        << result->reports[i].failure;
  }

  ASSERT_TRUE(result->renewal.has_value());
  EXPECT_FALSE(result->renewal->recommended_class_l.empty());

  const std::string report = RenderSuiteReport(*result);
  EXPECT_NE(report.find("Baseline — bfs"), std::string::npos);
  EXPECT_NE(report.find("Variability — BFS"), std::string::npos);
  EXPECT_NE(report.find("recommended reference class L"), std::string::npos);

  const std::string json = SuiteToJson(*result);
  EXPECT_EQ(json.rfind("{\"format\":\"graphalytics-cpp experiments v1\"", 0),
            0u);
  EXPECT_NE(json.find("\"renewal\":"), std::string::npos);
}

}  // namespace
}  // namespace ga::experiments
