// FaultPlan spec parsing and the injector's deterministic trigger points.
#include "faults/faults.h"

#include <gtest/gtest.h>

#include <string>

namespace ga::faults {
namespace {

TEST(FaultPlanTest, ParsesEveryKey) {
  auto plan = FaultPlan::Parse(
      "seed=7,crash_at_superstep=3,kill_at_superstep=5,"
      "alloc_fail_at_charge=11,abort_at_loop=2,stall_at_loop=4,"
      "stall_ms=250,corrupt_read=1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_EQ(plan->crash_at_superstep, 3);
  EXPECT_EQ(plan->kill_at_superstep, 5);
  EXPECT_EQ(plan->alloc_fail_at_charge, 11);
  EXPECT_EQ(plan->abort_at_loop, 2);
  EXPECT_EQ(plan->stall_at_loop, 4);
  EXPECT_EQ(plan->stall_ms, 250);
  EXPECT_TRUE(plan->corrupt_read);
  EXPECT_FALSE(plan->empty());
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  auto plan = FaultPlan::Parse("crash_at_superstep=3,seed=99");
  ASSERT_TRUE(plan.ok());
  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << "ToString() not parseable: "
                             << plan->ToString();
  EXPECT_EQ(reparsed->ToString(), plan->ToString());
  EXPECT_EQ(reparsed->crash_at_superstep, 3);
  EXPECT_EQ(reparsed->seed, 99u);
}

TEST(FaultPlanTest, UnknownKeyIsInvalidArgument) {
  auto plan = FaultPlan::Parse("crash_at_superstep=3,flux_capacitor=1");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultPlanTest, MalformedPairIsInvalidArgument) {
  EXPECT_FALSE(FaultPlan::Parse("crash_at_superstep").ok());
  EXPECT_FALSE(FaultPlan::Parse("crash_at_superstep=abc").ok());
  EXPECT_FALSE(FaultPlan::Parse("=3").ok());
}

TEST(FaultPlanTest, EmptySpecIsEmptyPlan) {
  auto plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->empty());
}

TEST(FaultInjectorTest, SuperstepCrashFiresAtExactlyThePlannedStep) {
  FaultPlan plan;
  plan.crash_at_superstep = 3;
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.OnSuperstep(1).ok());
  EXPECT_TRUE(injector.OnSuperstep(2).ok());
  Status crashed = injector.OnSuperstep(3);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.code(), StatusCode::kAborted);
  // Superstep faults re-fire: a retry hits the same wall.
  EXPECT_FALSE(injector.OnSuperstep(3).ok());
}

TEST(FaultInjectorTest, ChargeOrdinalFiresOnceAcrossInjectorLifetime) {
  FaultPlan plan;
  plan.alloc_fail_at_charge = 2;
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.OnMemoryCharge().ok());
  Status failed = injector.OnMemoryCharge();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kOutOfMemory);
  // Ordinal counters are cumulative: the fault is one-shot, so a retry
  // that reuses the injector proceeds (the transient-failure shape).
  EXPECT_TRUE(injector.OnMemoryCharge().ok());
  EXPECT_EQ(injector.charges_seen(), 3);
}

TEST(FaultInjectorTest, CorruptReadPoisonsStoreReads) {
  FaultPlan plan;
  plan.corrupt_read = true;
  FaultInjector injector(plan);
  Status read = injector.OnStoreRead("some/checkpoint.ckpt");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kIoError);
}

TEST(FaultInjectorTest, ScopedGlobalInjectorInstallsAndRestores) {
  ASSERT_EQ(GlobalInjector(), nullptr);
  FaultPlan plan;
  plan.corrupt_read = true;
  FaultInjector injector(plan);
  {
    ScopedGlobalInjector scoped(&injector);
    EXPECT_EQ(GlobalInjector(), &injector);
    {
      ScopedGlobalInjector inner(nullptr);  // explicit disable nests
      EXPECT_EQ(GlobalInjector(), nullptr);
    }
    EXPECT_EQ(GlobalInjector(), &injector);
  }
  EXPECT_EQ(GlobalInjector(), nullptr);
}

}  // namespace
}  // namespace ga::faults
