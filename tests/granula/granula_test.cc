#include <gtest/gtest.h>

#include "granula/archive.h"
#include "granula/model.h"

namespace ga::granula {
namespace {

std::unique_ptr<Operation> BuildSampleModel() {
  auto job = std::make_unique<Operation>("bsplite", std::string(kMissionJob));
  job->Begin(0.0, 0.0);
  Operation* load = job->AddChild("bsplite",
                                  std::string(kMissionUploadGraph));
  load->Begin(0.0, 0.0);
  load->End(2.0, 0.1);
  Operation* process = job->AddChild("bsplite",
                                     std::string(kMissionProcessGraph));
  process->Begin(2.0, 0.1);
  for (int i = 0; i < 3; ++i) {
    Operation* step = process->AddChild("engine",
                                        std::string(kMissionSuperstep));
    step->Begin(2.0 + i, 0.0);
    step->End(3.0 + i, 0.0);
    step->AddInfo("vertices_processed", std::to_string(100 * (i + 1)));
  }
  process->End(5.0, 0.4);
  job->End(5.0, 0.5);
  return job;
}

TEST(GranulaModelTest, DurationsFromTimestamps) {
  auto job = BuildSampleModel();
  EXPECT_DOUBLE_EQ(job->SimDuration(), 5.0);
  EXPECT_DOUBLE_EQ(job->Find(kMissionUploadGraph)->SimDuration(), 2.0);
  EXPECT_DOUBLE_EQ(job->Find(kMissionProcessGraph)->SimDuration(), 3.0);
  EXPECT_DOUBLE_EQ(job->WallDuration(), 0.5);
}

TEST(GranulaModelTest, FindSearchesRecursively) {
  auto job = BuildSampleModel();
  const Operation* step = job->Find(kMissionSuperstep);
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->SimDuration(), 1.0);
  EXPECT_EQ(job->Find("NoSuchMission"), nullptr);
}

TEST(GranulaModelTest, TotalSimDurationSumsAllMatches) {
  auto job = BuildSampleModel();
  // Three supersteps of 1 simulated second each.
  EXPECT_DOUBLE_EQ(job->TotalSimDuration(kMissionSuperstep), 3.0);
}

TEST(GranulaModelTest, InfoIsRecorded) {
  auto job = BuildSampleModel();
  const Operation* step = job->Find(kMissionSuperstep);
  ASSERT_NE(step, nullptr);
  auto it = step->info().find("vertices_processed");
  ASSERT_NE(it, step->info().end());
  EXPECT_EQ(it->second, "100");
}

TEST(GranulaArchiveTest, JsonContainsHierarchy) {
  Archive archive(BuildSampleModel());
  const std::string json = archive.ToJson();
  EXPECT_NE(json.find("\"mission\":\"Job\""), std::string::npos);
  EXPECT_NE(json.find("\"mission\":\"ProcessGraph\""), std::string::npos);
  EXPECT_NE(json.find("\"mission\":\"Superstep\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_duration_s\""), std::string::npos);
  EXPECT_NE(json.find("\"vertices_processed\":\"100\""), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(GranulaVisualizerTest, TextTreeShowsPhasesAndShares) {
  auto job = BuildSampleModel();
  const std::string text = RenderText(*job);
  EXPECT_NE(text.find("bsplite/Job"), std::string::npos);
  EXPECT_NE(text.find("bsplite/ProcessGraph"), std::string::npos);
  // ProcessGraph is 3 of 5 simulated seconds = 60%.
  EXPECT_NE(text.find("(60.0%)"), std::string::npos);
  // Nested supersteps are indented below ProcessGraph.
  EXPECT_NE(text.find("  engine/Superstep"), std::string::npos);
  // Drill-down: every node renders a wall-clock column (the job's wall
  // extent is 0.5s in the sample model).
  EXPECT_NE(text.find("[wall 0.500000s]"), std::string::npos);
  // Percentages are shares of the PARENT phase, not the whole job: each
  // superstep is 1 of ProcessGraph's 3 simulated seconds = 33.3% (a
  // job-global denominator would print 20.0%).
  EXPECT_NE(text.find("(33.3%)"), std::string::npos);
  EXPECT_EQ(text.find("(20.0%)"), std::string::npos);
  // Info key/values annotate the tree lines.
  EXPECT_NE(text.find("vertices_processed"), std::string::npos);
}

}  // namespace
}  // namespace ga::granula
