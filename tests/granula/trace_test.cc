// Deep-tracing contract tests (docs/OBSERVABILITY.md):
//
//   1. Bounded-overhead/determinism contract — tracing observes, never
//      steers: outputs, WorkLedger and simulated metrics are identical
//      with tracing on or off, at host parallelism 1, 2 and 8
//      (DESIGN.md §6 extended to the observability layer).
//   2. Per-superstep spans: every engine's traced archive carries one
//      Superstep Operation per EndSuperstep under ProcessGraph, stamped
//      with step index and annotations.
//   3. Chrome trace-event export: the JSON document is structurally
//      valid — balanced B/E nesting per (pid, tid) track, monotonic
//      timestamps in emission order, non-negative X durations.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algo/params.h"
#include "core/exec/thread_pool.h"
#include "core/graph.h"
#include "datagen/graph500.h"
#include "granula/chrome_trace.h"
#include "granula/model.h"
#include "platforms/platform.h"

namespace ga::platform {
namespace {

const Graph& TestGraph() {
  static const Graph graph = [] {
    datagen::Graph500Config config;
    config.scale = 9;
    config.num_edges = 4000;
    config.directedness = Directedness::kDirected;
    config.seed = 7;
    auto built = datagen::GenerateGraph500(config);
    if (!built.ok()) std::abort();
    return std::move(built).value();
  }();
  return graph;
}

RunResult RunOnce(const std::string& platform_id, Algorithm algorithm,
                  exec::ThreadPool* pool, bool traced) {
  auto platform = CreatePlatform(platform_id);
  if (!platform.ok()) std::abort();
  AlgorithmParams params;
  params.source_vertex = TestGraph().ExternalId(0);
  params.pagerank_iterations = 5;
  params.cdlp_iterations = 4;
  ExecutionEnvironment env;
  env.host_pool = pool;
  env.trace_enabled = traced;
  auto result =
      platform.value()->RunJob(TestGraph(), algorithm, params, env);
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

void ExpectIdenticalObservableState(const RunResult& expected,
                                    const RunResult& actual,
                                    const std::string& label) {
  // Outputs: exact (bitwise for doubles — determinism, not tolerance).
  EXPECT_EQ(expected.output.int_values, actual.output.int_values) << label;
  EXPECT_EQ(expected.output.double_values, actual.output.double_values)
      << label;
  // Simulated metrics.
  EXPECT_EQ(expected.metrics.upload_sim_seconds,
            actual.metrics.upload_sim_seconds)
      << label;
  EXPECT_EQ(expected.metrics.makespan_sim_seconds,
            actual.metrics.makespan_sim_seconds)
      << label;
  EXPECT_EQ(expected.metrics.processing_sim_seconds,
            actual.metrics.processing_sim_seconds)
      << label;
  EXPECT_EQ(expected.metrics.supersteps, actual.metrics.supersteps) << label;
  // WorkLedger.
  EXPECT_EQ(expected.metrics.ledger.compute_ops,
            actual.metrics.ledger.compute_ops)
      << label;
  EXPECT_EQ(expected.metrics.ledger.messages, actual.metrics.ledger.messages)
      << label;
  EXPECT_EQ(expected.metrics.ledger.remote_bytes,
            actual.metrics.ledger.remote_bytes)
      << label;
  EXPECT_EQ(expected.metrics.ledger.allocations,
            actual.metrics.ledger.allocations)
      << label;
  EXPECT_EQ(expected.metrics.ledger.rows_materialized,
            actual.metrics.ledger.rows_materialized)
      << label;
}

/// The contract matrix for one platform/algorithm cell: baseline is the
/// untraced serial run; every {host jobs 1, 2, 8} x {traced, untraced}
/// combination must present identical observable state.
void ExpectTracingInvariance(const std::string& platform_id,
                             Algorithm algorithm) {
  const RunResult baseline =
      RunOnce(platform_id, algorithm, nullptr, /*traced=*/false);
  for (int jobs : {1, 2, 8}) {
    std::unique_ptr<exec::ThreadPool> pool;
    if (jobs > 1) pool = std::make_unique<exec::ThreadPool>(jobs);
    for (bool traced : {false, true}) {
      const RunResult run =
          RunOnce(platform_id, algorithm, pool.get(), traced);
      ExpectIdenticalObservableState(
          baseline, run,
          platform_id + "/" + std::string(AlgorithmName(algorithm)) +
              " jobs=" + std::to_string(jobs) +
              (traced ? " traced" : " untraced"));
      EXPECT_EQ(run.metrics.trace.enabled, traced);
      if (traced) {
        // The deterministic counter group must not depend on --jobs.
        const RunResult serial_traced =
            RunOnce(platform_id, algorithm, nullptr, /*traced=*/true);
        EXPECT_EQ(run.metrics.trace.parallel_loops,
                  serial_traced.metrics.trace.parallel_loops);
        EXPECT_EQ(run.metrics.trace.parallel_chunks,
                  serial_traced.metrics.trace.parallel_chunks);
        EXPECT_EQ(run.metrics.trace.frontier_peak_active,
                  serial_traced.metrics.trace.frontier_peak_active);
      }
    }
  }
}

TEST(TraceDeterminismTest, SpMatBfs) {
  ExpectTracingInvariance("spmat", Algorithm::kBfs);
}

TEST(TraceDeterminismTest, SpMatPageRank) {
  ExpectTracingInvariance("spmat", Algorithm::kPageRank);
}

TEST(TraceDeterminismTest, BspLiteBfs) {
  ExpectTracingInvariance("bsplite", Algorithm::kBfs);
}

TEST(TraceDeterminismTest, BspLitePageRank) {
  ExpectTracingInvariance("bsplite", Algorithm::kPageRank);
}

// --- Per-superstep spans, all engines ---------------------------------------

TEST(TraceSpanTest, EveryEngineEmitsSuperstepSpans) {
  for (const std::string& platform_id : AllPlatformIds()) {
    const RunResult run =
        RunOnce(platform_id, Algorithm::kBfs, nullptr, /*traced=*/true);
    ASSERT_TRUE(run.archive.valid()) << platform_id;
    const granula::Operation* processing =
        run.archive.root().Find(granula::kMissionProcessGraph);
    ASSERT_NE(processing, nullptr) << platform_id;
    int steps = 0;
    for (const auto& child : processing->children()) {
      if (child->mission() != granula::kMissionSuperstep) continue;
      // Stamped with its step index and the per-superstep message delta.
      EXPECT_NE(child->info().find("step"), child->info().end())
          << platform_id;
      EXPECT_NE(child->info().find("messages"), child->info().end())
          << platform_id;
      ++steps;
    }
    EXPECT_EQ(steps, run.metrics.supersteps) << platform_id;
    EXPECT_GT(steps, 0) << platform_id;
    // Frontier engines record the push/pull decision and its inputs on at
    // least one superstep (spmat/pushpull/gaslite/nativekernel BFS).
    if (platform_id == "spmat" || platform_id == "pushpull" ||
        platform_id == "gaslite" || platform_id == "nativekernel") {
      bool any_direction = false;
      for (const auto& child : processing->children()) {
        if (child->info().count("direction") > 0 &&
            child->info().count("decide_total_adjacency") > 0 &&
            child->info().count("decide_alpha") > 0) {
          any_direction = true;
        }
      }
      EXPECT_TRUE(any_direction) << platform_id;
    }
  }
}

TEST(TraceSpanTest, UntracedRunsCarryNoTraceState) {
  const RunResult run =
      RunOnce("spmat", Algorithm::kBfs, nullptr, /*traced=*/false);
  EXPECT_FALSE(run.metrics.trace.enabled);
  EXPECT_EQ(run.metrics.trace.parallel_loops, 0u);
  EXPECT_TRUE(run.archive.host_spans().empty());
}

// --- Chrome trace-event schema ----------------------------------------------

/// Minimal trace-event scanner: splits the traceEvents array into event
/// object substrings by brace matching (string-literal aware), then
/// validates per-track nesting and timestamp monotonicity.
std::vector<std::string> SplitEvents(const std::string& json) {
  std::vector<std::string> events;
  const std::size_t array_begin = json.find("\"traceEvents\":[");
  if (array_begin == std::string::npos) return events;
  int depth = 0;
  bool in_string = false;
  std::size_t event_begin = 0;
  for (std::size_t i = array_begin; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (++depth == 1) event_begin = i;
    } else if (c == '}') {
      if (--depth == 0) {
        events.push_back(json.substr(event_begin, i - event_begin + 1));
      }
    } else if (c == ']' && depth == 0) {
      break;  // end of traceEvents
    }
  }
  return events;
}

/// Extracts a scalar field ("key":value or "key":"value") as text.
std::string FieldOf(const std::string& event, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = event.find(needle);
  if (at == std::string::npos) return "";
  std::size_t begin = at + needle.size();
  if (begin < event.size() && event[begin] == '"') {
    const std::size_t end = event.find('"', begin + 1);
    return event.substr(begin + 1, end - begin - 1);
  }
  std::size_t end = begin;
  while (end < event.size() && event[end] != ',' && event[end] != '}') ++end;
  return event.substr(begin, end - begin);
}

TEST(ChromeTraceTest, ExportIsSchemaValid) {
  const RunResult run =
      RunOnce("spmat", Algorithm::kPageRank, nullptr, /*traced=*/true);
  ASSERT_TRUE(run.archive.valid());
  const std::string json = run.archive.ToChromeTrace("spmat/test/pr");
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

  const std::vector<std::string> events = SplitEvents(json);
  ASSERT_GT(events.size(), 0u);

  // Per-(pid, tid) track state: B/E stack depth and last timestamp.
  std::map<std::pair<std::string, std::string>, int> stack_depth;
  std::map<std::pair<std::string, std::string>, double> last_ts;
  std::map<std::pair<std::string, std::string>, std::vector<double>>
      open_begin_ts;
  int duration_events = 0;
  int complete_events = 0;
  int counter_events = 0;
  for (const std::string& event : events) {
    const std::string ph = FieldOf(event, "ph");
    ASSERT_FALSE(ph.empty()) << event;
    if (ph == "M") continue;  // metadata carries no timestamp
    const std::string ts_text = FieldOf(event, "ts");
    ASSERT_FALSE(ts_text.empty()) << event;
    const double ts = std::stod(ts_text);
    const auto track = std::make_pair(FieldOf(event, "pid"),
                                      FieldOf(event, "tid"));
    // Emission order is monotonic per track (DFS over the span tree; host
    // chunks are flushed in step order per slot).
    if (ph == "B" || ph == "E") {
      auto seen = last_ts.find(track);
      if (seen != last_ts.end()) {
        EXPECT_GE(ts, seen->second) << event;
      }
      last_ts[track] = ts;
    }
    if (ph == "B") {
      ++duration_events;
      ++stack_depth[track];
      open_begin_ts[track].push_back(ts);
    } else if (ph == "E") {
      ASSERT_GT(stack_depth[track], 0) << "E without B: " << event;
      --stack_depth[track];
      // A span ends at or after it began.
      EXPECT_GE(ts, open_begin_ts[track].back()) << event;
      open_begin_ts[track].pop_back();
    } else if (ph == "X") {
      ++complete_events;
      const std::string dur = FieldOf(event, "dur");
      ASSERT_FALSE(dur.empty()) << event;
      EXPECT_GE(std::stod(dur), 0.0) << event;
    } else if (ph == "C") {
      ++counter_events;
    }
  }
  // Every track's B/E events are balanced.
  for (const auto& [track, depth] : stack_depth) {
    EXPECT_EQ(depth, 0) << "unbalanced track pid=" << track.first
                        << " tid=" << track.second;
  }
  EXPECT_GT(duration_events, 0);
  // PageRank supersteps feed counter tracks (active, residual).
  EXPECT_GT(counter_events, 0);
  // The serial run still times chunks (slot 0 executes inline).
  EXPECT_GT(complete_events, 0);
}

TEST(ChromeTraceTest, BuilderAggregatesMultipleJobs) {
  const RunResult first =
      RunOnce("spmat", Algorithm::kBfs, nullptr, /*traced=*/true);
  const RunResult second =
      RunOnce("bsplite", Algorithm::kBfs, nullptr, /*traced=*/true);
  granula::ChromeTraceBuilder builder;
  builder.AddJob(first.archive, "spmat/bfs");
  builder.AddJob(second.archive, "bsplite/bfs");
  const std::string json = builder.Finish();
  EXPECT_NE(json.find("spmat/bfs"), std::string::npos);
  EXPECT_NE(json.find("bsplite/bfs"), std::string::npos);
  // Distinct jobs land on distinct pids.
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
}

}  // namespace
}  // namespace ga::platform
