#include "harness/dataset_registry.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

namespace ga::harness {
namespace {

BenchmarkConfig SmallConfig() {
  BenchmarkConfig config;
  config.scale_divisor = 16384;  // tiny instances for fast tests
  config.seed = 7;
  return config;
}

TEST(DatasetRegistryTest, CatalogueMatchesTables3And4) {
  DatasetRegistry registry(SmallConfig());
  ASSERT_EQ(registry.specs().size(), 16u);  // 6 real + 5 datagen + 5 g500
  // Spot-check ids and classes from the paper.
  EXPECT_EQ(registry.Find("R1")->scale_label, "2XS");
  EXPECT_EQ(registry.Find("R4")->scale_label, "S");
  EXPECT_EQ(registry.Find("R5")->scale_label, "XL");
  EXPECT_EQ(registry.Find("D100")->scale_label, "M");
  EXPECT_EQ(registry.Find("D300")->scale_label, "L");
  EXPECT_EQ(registry.Find("D1000")->scale_label, "XL");
  EXPECT_EQ(registry.Find("G22")->scale_label, "S");
  EXPECT_EQ(registry.Find("G24")->scale_label, "M");
  EXPECT_EQ(registry.Find("G26")->scale_label, "XL");
}

TEST(DatasetRegistryTest, UnknownIdRejected) {
  DatasetRegistry registry(SmallConfig());
  EXPECT_FALSE(registry.Find("R99").ok());
  EXPECT_FALSE(registry.Load("R99").ok());
}

TEST(DatasetRegistryTest, LoadProducesScaledGraph) {
  DatasetRegistry registry(SmallConfig());
  auto graph = registry.Load("G22");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  auto spec = registry.Find("G22");
  // Edge count ~ paper / divisor (exactly, for Graph500 datasets).
  EXPECT_EQ((*graph)->num_edges(),
            spec->paper_edges / SmallConfig().scale_divisor);
}

TEST(DatasetRegistryTest, LoadIsCached) {
  DatasetRegistry registry(SmallConfig());
  auto first = registry.Load("R1");
  auto second = registry.Load("R1");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // same pointer
  registry.Evict("R1");
  auto third = registry.Load("R1");
  ASSERT_TRUE(third.ok());
}

TEST(DatasetRegistryTest, DirectednessAndWeightsPerCatalogue) {
  DatasetRegistry registry(SmallConfig());
  auto wiki = registry.Load("R1");
  ASSERT_TRUE(wiki.ok());
  EXPECT_TRUE((*wiki)->is_directed());
  auto dota = registry.Load("R4");
  ASSERT_TRUE(dota.ok());
  EXPECT_FALSE((*dota)->is_directed());
  EXPECT_TRUE((*dota)->is_weighted());
  auto d300 = registry.Load("D300");
  ASSERT_TRUE(d300.ok());
  EXPECT_TRUE((*d300)->is_weighted());  // SSSP runs on D300 (Figure 6)
  auto g22 = registry.Load("G22");
  ASSERT_TRUE(g22.ok());
  EXPECT_FALSE((*g22)->is_weighted());
}

TEST(DatasetRegistryTest, ClusteringVariantsDiffer) {
  // D100' (cc=0.05) must be less clustered than D100'' (cc=0.15);
  // the tunable-CC property of the new Datagen (Section 2.5.1).
  BenchmarkConfig config = SmallConfig();
  config.scale_divisor = 2048;
  DatasetRegistry registry(config);
  auto low = registry.Find("D100cc005");
  auto high = registry.Find("D100cc015");
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_LT(low->target_clustering, high->target_clustering);
}

TEST(DatasetRegistryTest, ParamsUseHighestDegreeRoot) {
  DatasetRegistry registry(SmallConfig());
  auto params = registry.ParamsFor("G22");
  ASSERT_TRUE(params.ok());
  auto graph = registry.Load("G22");
  ASSERT_TRUE(graph.ok());
  const VertexIndex root = (*graph)->IndexOf(params->source_vertex);
  ASSERT_NE(root, kInvalidVertex);
  EXPECT_EQ((*graph)->OutDegree(root), (*graph)->max_out_degree());
  EXPECT_EQ(params->pagerank_iterations, 20);
  EXPECT_EQ(params->cdlp_iterations, 10);
}

TEST(DatasetRegistryTest, DeterministicAcrossInstances) {
  DatasetRegistry a(SmallConfig());
  DatasetRegistry b(SmallConfig());
  auto graph_a = a.Load("G23");
  auto graph_b = b.Load("G23");
  ASSERT_TRUE(graph_a.ok());
  ASSERT_TRUE(graph_b.ok());
  EXPECT_EQ((*graph_a)->num_vertices(), (*graph_b)->num_vertices());
  EXPECT_EQ((*graph_a)->num_edges(), (*graph_b)->num_edges());
}

class RegistryDiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_dir_ = std::filesystem::temp_directory_path() /
                ("ga_registry_cache_" + std::to_string(::getpid()));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(data_dir_, ec);
  }

  BenchmarkConfig CachedConfig() const {
    BenchmarkConfig config = SmallConfig();
    config.data_dir = data_dir_.string();
    return config;
  }

  std::filesystem::path data_dir_;
};

TEST_F(RegistryDiskCacheTest, LoadPopulatesAndServesSnapshotCache) {
  DatasetRegistry registry(CachedConfig());
  ASSERT_TRUE(registry.disk_cache().has_value());
  auto first = registry.Load("R1");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE((*first)->is_storage_backed());  // generated this run
  auto spec = registry.Find("R1");
  ASSERT_TRUE(spec.ok());

  // A fresh registry over the same data dir serves the snapshot —
  // storage-backed, no regeneration.
  DatasetRegistry warm(CachedConfig());
  auto warm_graph = warm.Load("R1");
  ASSERT_TRUE(warm_graph.ok()) << warm_graph.status().ToString();
  EXPECT_TRUE((*warm_graph)->is_storage_backed());
  EXPECT_EQ((*warm_graph)->num_vertices(), (*first)->num_vertices());
  EXPECT_EQ((*warm_graph)->num_edges(), (*first)->num_edges());
}

TEST_F(RegistryDiskCacheTest, EvictKeepsSnapshotPurgeRemovesIt) {
  DatasetRegistry registry(CachedConfig());
  ASSERT_TRUE(registry.Load("R1").ok());
  auto spec = registry.Find("R1");
  ASSERT_TRUE(spec.ok());

  // Evict drops only the RAM instance: the snapshot survives and the
  // next Load is an mmap, not a regeneration.
  registry.Evict("R1");
  auto after_evict = registry.Load("R1");
  ASSERT_TRUE(after_evict.ok());
  EXPECT_TRUE((*after_evict)->is_storage_backed());

  // Purge removes both layers: the next Load regenerates.
  ASSERT_TRUE(registry.Purge("R1").ok());
  auto after_purge = registry.Load("R1");
  ASSERT_TRUE(after_purge.ok());
  EXPECT_FALSE((*after_purge)->is_storage_backed());
}

TEST_F(RegistryDiskCacheTest, PurgeUnknownIdIsNotFound) {
  DatasetRegistry registry(CachedConfig());
  EXPECT_EQ(registry.Purge("R99").code(), StatusCode::kNotFound);
}

TEST_F(RegistryDiskCacheTest, PurgeWithoutDataDirOnlyEvicts) {
  DatasetRegistry registry(SmallConfig());
  EXPECT_FALSE(registry.disk_cache().has_value());
  ASSERT_TRUE(registry.Load("R1").ok());
  EXPECT_TRUE(registry.Purge("R1").ok());
  auto reloaded = registry.Load("R1");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_FALSE((*reloaded)->is_storage_backed());
}

TEST_F(RegistryDiskCacheTest, CacheKeyedOnSeedAndDivisor) {
  // A different seed or divisor must not be served someone else's
  // snapshot: the key addresses a different file.
  DatasetRegistry registry(CachedConfig());
  ASSERT_TRUE(registry.Load("R1").ok());

  BenchmarkConfig other_seed = CachedConfig();
  other_seed.seed = 1234;
  DatasetRegistry reseeded(other_seed);
  auto graph = reseeded.Load("R1");
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE((*graph)->is_storage_backed());  // miss -> regenerated

  BenchmarkConfig other_divisor = CachedConfig();
  other_divisor.scale_divisor = 8192;
  DatasetRegistry rescaled(other_divisor);
  auto scaled = rescaled.Load("R1");
  ASSERT_TRUE(scaled.ok());
  EXPECT_FALSE((*scaled)->is_storage_backed());
}

TEST(BenchmarkConfigTest, ProjectionAndBudget) {
  BenchmarkConfig config;
  config.scale_divisor = 1024;
  EXPECT_DOUBLE_EQ(config.Project(0.5), 512.0);
  EXPECT_EQ(config.ScaledMemoryBudget(),
            64LL * 1024 * 1024 * 1024 / 1024);
}

}  // namespace
}  // namespace ga::harness
