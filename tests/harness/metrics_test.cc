#include "harness/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace ga::harness {
namespace {

TEST(MetricsTest, EpsDefinition) {
  // EPS = |E| / T_proc (Section 2.3).
  EXPECT_DOUBLE_EQ(Eps(1'000'000, 2.0), 500'000.0);
  EXPECT_DOUBLE_EQ(Eps(100, 0.0), 0.0);
}

TEST(MetricsTest, EvpsDefinition) {
  // EVPS = (|V| + |E|) / T_proc.
  EXPECT_DOUBLE_EQ(Evps(10, 90, 1.0), 100.0);
}

TEST(MetricsTest, SpeedupDefinition) {
  EXPECT_DOUBLE_EQ(Speedup(10.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(Speedup(10.0, 0.0), 0.0);
}

TEST(MetricsTest, MeanAndStddev) {
  std::vector<double> samples = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(samples), 5.0);
  EXPECT_NEAR(StandardDeviation(samples), 2.138, 1e-3);
}

TEST(MetricsTest, CvIsScaleInvariant) {
  // "The main advantage of this metric is its independence of the scale
  // of the results" (Section 2.3).
  std::vector<double> small = {1.0, 1.1, 0.9};
  std::vector<double> large = {1000.0, 1100.0, 900.0};
  EXPECT_NEAR(CoefficientOfVariation(small),
              CoefficientOfVariation(large), 1e-12);
}

TEST(MetricsTest, CvOfConstantIsZero) {
  std::vector<double> constant = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(CoefficientOfVariation(constant), 0.0);
}

TEST(MetricsTest, EmptyAndSingletonSamples) {
  std::vector<double> empty;
  std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(Mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(StandardDeviation(one), 0.0);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation(one), 0.0);
}

}  // namespace
}  // namespace ga::harness
