// Paper-fidelity integration tests: assert the *qualitative findings* of
// the paper's evaluation (Section 4) on the default configuration
// (scale divisor 1024). These are the claims EXPERIMENTS.md reports;
// if a refactor breaks one of them, this suite fails.
//
// The suite runs a curated subset of the experiment matrix to stay fast;
// the full tables come from the bench/ binaries.
#include <gtest/gtest.h>

#include <map>

#include "harness/runner.h"

namespace ga::harness {
namespace {

class PaperFidelityTest : public ::testing::Test {
 protected:
  static BenchmarkRunner& runner() {
    static BenchmarkRunner* instance =
        new BenchmarkRunner(BenchmarkConfig{});  // paper-default config
    return *instance;
  }

  static JobReport MustRun(const std::string& platform,
                           const std::string& dataset, Algorithm algorithm,
                           int machines = 1) {
    JobSpec spec;
    spec.platform_id = platform;
    spec.dataset_id = dataset;
    spec.algorithm = algorithm;
    spec.num_machines = machines;
    spec.prefer_distributed_backend = machines > 1;
    spec.validate = false;  // speed: correctness covered elsewhere
    auto report = runner().Run(spec);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : JobReport{};
  }

  static double Tproc(const std::string& platform,
                      const std::string& dataset, Algorithm algorithm) {
    JobReport report = MustRun(platform, dataset, algorithm);
    EXPECT_EQ(report.outcome, JobOutcome::kCompleted)
        << platform << "/" << dataset << ": " << report.failure;
    return report.tproc_seconds;
  }
};

// §4.1: "GraphMat and PGX.D significantly outperform their competitors";
// "PowerGraph and OpenG are roughly an order of magnitude slower";
// "Giraph and GraphX are consistently two orders of magnitude slower".
TEST_F(PaperFidelityTest, DatasetVarietyPerformanceTiers) {
  const double spmat = Tproc("spmat", "D300", Algorithm::kBfs);
  const double pushpull = Tproc("pushpull", "D300", Algorithm::kBfs);
  const double gaslite = Tproc("gaslite", "D300", Algorithm::kBfs);
  const double nativekernel =
      Tproc("nativekernel", "D300", Algorithm::kBfs);
  const double bsplite = Tproc("bsplite", "D300", Algorithm::kBfs);
  const double dataflow = Tproc("dataflow", "D300", Algorithm::kBfs);

  const double fastest = std::min(spmat, pushpull);
  // Middle tier: ~an order of magnitude slower than the fastest.
  EXPECT_GT(gaslite, 2.0 * fastest);
  EXPECT_GT(nativekernel, 2.0 * fastest);
  EXPECT_LT(gaslite, 40.0 * fastest);
  // Slow tier: around two orders of magnitude.
  EXPECT_GT(bsplite, 25.0 * fastest);
  EXPECT_GT(dataflow, 25.0 * fastest);
  EXPECT_GT(dataflow, bsplite);  // GraphX is the slowest (Figures 4, 6)
}

// §4.1 Table 8: platform overhead is 66%..99.8% of the makespan.
TEST_F(PaperFidelityTest, MakespanDominatedByOverhead) {
  for (const char* platform :
       {"bsplite", "dataflow", "gaslite", "spmat", "nativekernel",
        "pushpull"}) {
    JobReport report = MustRun(platform, "D300", Algorithm::kBfs);
    ASSERT_EQ(report.outcome, JobOutcome::kCompleted) << platform;
    const double ratio = report.tproc_seconds / report.makespan_seconds;
    EXPECT_LT(ratio, 0.40) << platform;  // overhead >= 60% everywhere
  }
  // PGX.D has the most extreme overhead share (paper: 0.2%).
  JobReport pgxd = MustRun("pushpull", "D300", Algorithm::kBfs);
  EXPECT_LT(pgxd.tproc_seconds / pgxd.makespan_seconds, 0.02);
}

// §4.2: only OpenG and PowerGraph complete LCC; PGX.D has none.
TEST_F(PaperFidelityTest, LccSurvivalMatchesFigure6) {
  const std::map<std::string, JobOutcome> expected = {
      {"bsplite", JobOutcome::kCrashed},
      {"dataflow", JobOutcome::kCrashed},
      {"gaslite", JobOutcome::kCompleted},
      {"spmat", JobOutcome::kCrashed},
      {"nativekernel", JobOutcome::kCompleted},
      {"pushpull", JobOutcome::kUnsupported},
  };
  for (const auto& [platform, outcome] : expected) {
    JobReport report = MustRun(platform, "R4", Algorithm::kLcc);
    EXPECT_EQ(report.outcome, outcome) << platform << ": "
                                       << report.failure;
  }
}

// §4.2: GraphX is unable to complete CDLP.
TEST_F(PaperFidelityTest, GraphxCannotCompleteCdlp) {
  JobReport r4 = MustRun("dataflow", "R4", Algorithm::kCdlp);
  EXPECT_NE(r4.outcome, JobOutcome::kCompleted);
  JobReport d300 = MustRun("dataflow", "D300", Algorithm::kCdlp);
  EXPECT_NE(d300.outcome, JobOutcome::kCompleted);
}

// §4.2: OpenG performs best on CDLP.
TEST_F(PaperFidelityTest, OpenGBestOnCdlp) {
  const double openg = Tproc("nativekernel", "D300", Algorithm::kCdlp);
  for (const char* other : {"bsplite", "gaslite", "spmat", "pushpull"}) {
    EXPECT_LT(openg, Tproc(other, "D300", Algorithm::kCdlp)) << other;
  }
}

// §4.3 Table 9: PGX.D scales best vertically; every platform gains from
// more threads.
TEST_F(PaperFidelityTest, VerticalScalingOrder) {
  auto speedup = [&](const char* platform) {
    JobSpec one;
    one.platform_id = platform;
    one.dataset_id = "D300";
    one.algorithm = Algorithm::kPageRank;
    one.threads_per_machine = 1;
    one.validate = false;
    JobSpec many = one;
    many.threads_per_machine = 32;
    auto t1 = runner().Run(one);
    auto t32 = runner().Run(many);
    EXPECT_TRUE(t1.ok() && t32.ok());
    return t1->tproc_seconds / t32->tproc_seconds;
  };
  const double pushpull = speedup("pushpull");
  const double gaslite = speedup("gaslite");
  const double nativekernel = speedup("nativekernel");
  const double dataflow = speedup("dataflow");
  EXPECT_GT(pushpull, 10.0);        // paper: 13.9
  EXPECT_GT(gaslite, 6.0);          // paper: 10.3
  EXPECT_GT(nativekernel, 4.0);     // paper: 6.4
  EXPECT_GT(pushpull, gaslite);
  EXPECT_GT(gaslite, dataflow);     // GraphX scales worst (2.9)
}

// §4.4: Giraph's 1 -> 2 machine cliff, including the PR SLA failure on 2
// machines despite succeeding on 1.
TEST_F(PaperFidelityTest, GiraphStrongScalingCliff) {
  JobReport bfs1 = MustRun("bsplite", "D1000", Algorithm::kBfs, 1);
  JobReport bfs2 = MustRun("bsplite", "D1000", Algorithm::kBfs, 2);
  ASSERT_EQ(bfs1.outcome, JobOutcome::kCompleted);
  ASSERT_EQ(bfs2.outcome, JobOutcome::kCompleted);
  EXPECT_GT(bfs2.tproc_seconds, 1.5 * bfs1.tproc_seconds);

  JobReport pr1 = MustRun("bsplite", "D1000", Algorithm::kPageRank, 1);
  JobReport pr2 = MustRun("bsplite", "D1000", Algorithm::kPageRank, 2);
  EXPECT_EQ(pr1.outcome, JobOutcome::kCompleted);
  EXPECT_EQ(pr2.outcome, JobOutcome::kTimedOut);
}

// §4.4: PGX.D fails to complete either algorithm on a single machine,
// and GraphX requires 2 machines for BFS and 4 for PR.
TEST_F(PaperFidelityTest, StrongScalingMemoryGates) {
  EXPECT_EQ(MustRun("pushpull", "D1000", Algorithm::kBfs, 1).outcome,
            JobOutcome::kCrashed);
  EXPECT_EQ(MustRun("pushpull", "D1000", Algorithm::kPageRank, 1).outcome,
            JobOutcome::kCrashed);
  EXPECT_EQ(MustRun("pushpull", "D1000", Algorithm::kBfs, 2).outcome,
            JobOutcome::kCompleted);

  EXPECT_EQ(MustRun("dataflow", "D1000", Algorithm::kBfs, 1).outcome,
            JobOutcome::kCrashed);
  EXPECT_EQ(MustRun("dataflow", "D1000", Algorithm::kBfs, 2).outcome,
            JobOutcome::kCompleted);
  EXPECT_EQ(MustRun("dataflow", "D1000", Algorithm::kPageRank, 2).outcome,
            JobOutcome::kCrashed);
  EXPECT_EQ(MustRun("dataflow", "D1000", Algorithm::kPageRank, 4).outcome,
            JobOutcome::kCompleted);
}

// §4.4: "GraphMat shows a clear outlier for PR on a single machine, most
// likely because of swapping" — the D backend swaps instead of crashing.
TEST_F(PaperFidelityTest, GraphmatSingleMachineSwapOutlier) {
  // The paper runs GraphMat's D backend in the horizontal-scaling
  // experiments, including the single-machine point.
  JobSpec spec;
  spec.platform_id = "spmat";
  spec.dataset_id = "D1000";
  spec.algorithm = Algorithm::kPageRank;
  spec.prefer_distributed_backend = true;
  spec.validate = false;
  auto swap_run = runner().Run(spec);
  ASSERT_TRUE(swap_run.ok());
  JobReport swapping = *swap_run;
  ASSERT_EQ(swapping.outcome, JobOutcome::kCompleted)
      << swapping.failure;
  JobReport two = MustRun("spmat", "D1000", Algorithm::kPageRank, 2);
  ASSERT_EQ(two.outcome, JobOutcome::kCompleted);
  // The outlier is much slower than the 2-machine run.
  EXPECT_GT(swapping.tproc_seconds, 4.0 * two.tproc_seconds);
}

// §4.6 Table 10: the exact smallest-failing dataset per platform.
TEST_F(PaperFidelityTest, StressTestCrashPointsMatchTable10) {
  struct Expectation {
    const char* platform;
    const char* passes;  // largest dataset (by scale) that must pass
    const char* fails;   // the paper's smallest failing dataset
  };
  const Expectation expectations[] = {
      {"bsplite", "D1000", "G26"},   // Giraph: fails G26(9.0), passes D1000
      {"dataflow", "G24", "G25"},    // GraphX: fails G25(8.7)
      {"gaslite", "G26", "R5"},      // PowerGraph: fails R5(9.3)
      {"spmat", "D1000", "G26"},     // GraphMat: fails G26(9.0)
      {"nativekernel", "G26", "R5"}, // OpenG: fails R5(9.3)
      {"pushpull", "G24", "G25"},    // PGX.D: fails G25(8.7)
  };
  for (const Expectation& expectation : expectations) {
    JobReport pass =
        MustRun(expectation.platform, expectation.passes, Algorithm::kBfs);
    EXPECT_EQ(pass.outcome, JobOutcome::kCompleted)
        << expectation.platform << " must pass " << expectation.passes
        << ": " << pass.failure;
    JobReport fail =
        MustRun(expectation.platform, expectation.fails, Algorithm::kBfs);
    EXPECT_EQ(fail.outcome, JobOutcome::kCrashed)
        << expectation.platform << " must crash on " << expectation.fails;
  }
}

// §4.6: "Most platforms fail on a Graph500 graph, but succeed on a
// Datagen graph of comparable scale" — skew sensitivity (G26 and D1000
// are both scale 9.0).
TEST_F(PaperFidelityTest, SkewSensitivityAtEqualScale) {
  for (const char* platform : {"bsplite", "spmat"}) {
    EXPECT_EQ(MustRun(platform, "D1000", Algorithm::kBfs).outcome,
              JobOutcome::kCompleted)
        << platform;
    EXPECT_EQ(MustRun(platform, "G26", Algorithm::kBfs).outcome,
              JobOutcome::kCrashed)
        << platform;
  }
}

// §4.7 Table 11: every platform's CV stays below 10%.
TEST_F(PaperFidelityTest, VariabilityBelowTenPercent) {
  for (const std::string& platform : platform::AllPlatformIds()) {
    JobSpec spec;
    spec.platform_id = platform;
    spec.dataset_id = "D300";
    spec.algorithm = Algorithm::kBfs;
    spec.repetitions = 10;
    spec.validate = false;
    auto report = runner().Run(spec);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->outcome, JobOutcome::kCompleted) << platform;
    EXPECT_LT(report->tproc_cv, 0.14) << platform;  // slack for n=10
  }
}

}  // namespace
}  // namespace ga::harness
