#include "harness/renewal.h"

#include <gtest/gtest.h>

namespace ga::harness {
namespace {

TEST(RenewalTest, DefaultConfigurationRecommendsClassL) {
  // Paper §2.2.4 + §2.4: with the paper's catalogue and machines, the
  // reference class is L — the XL class contains graphs (friendster and
  // twitter at scale 9.3) that no single machine can process.
  BenchmarkRunner runner{BenchmarkConfig{}};
  auto renewal = EvaluateClassL(runner);
  ASSERT_TRUE(renewal.ok()) << renewal.status().ToString();
  EXPECT_EQ(renewal->recommended_class_l, "L");

  // Every dataset below class XL is processable by someone.
  for (const DatasetEvidence& evidence : renewal->evidence) {
    if (evidence.paper_scale < 9.0) {
      EXPECT_FALSE(evidence.best_platform.empty()) << evidence.dataset_id;
    }
  }
  // R5 (friendster, scale 9.3) defeats every platform on one machine.
  for (const DatasetEvidence& evidence : renewal->evidence) {
    if (evidence.dataset_id == "R5") {
      EXPECT_TRUE(evidence.best_platform.empty());
    }
  }
}

TEST(RenewalTest, EvidenceCoversCatalogue) {
  BenchmarkRunner runner{BenchmarkConfig{}};
  auto renewal = EvaluateClassL(runner);
  ASSERT_TRUE(renewal.ok());
  EXPECT_EQ(renewal->evidence.size(),
            runner.registry().specs().size());
  // The fast engines win the capacity races they survive.
  for (const DatasetEvidence& evidence : renewal->evidence) {
    if (evidence.dataset_id == "D300") {
      EXPECT_EQ(evidence.best_platform, "pushpull");
    }
  }
}

}  // namespace
}  // namespace ga::harness
