#include "harness/report.h"

#include <gtest/gtest.h>

namespace ga::harness {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table("demo", {"name", "value"});
  table.AddRow({"bfs", "1.0s"});
  table.AddRow({"pagerank", "20.5s"});
  const std::string text = table.Render();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("name      value"), std::string::npos);
  EXPECT_NE(text.find("pagerank  20.5s"), std::string::npos);
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable table("demo", {"a", "b"});
  table.AddRow({"plain", "with,comma"});
  table.AddRow({"quote\"inside", "x"});
  const std::string csv = table.RenderCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(FormatSecondsTest, PicksSensibleUnits) {
  EXPECT_EQ(FormatSeconds(0.0000005), "0us");
  EXPECT_EQ(FormatSeconds(0.0005), "500us");
  EXPECT_EQ(FormatSeconds(0.25), "250ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(FormatSeconds(150.0), "2m 30s");
  EXPECT_EQ(FormatSeconds(7300.0), "2.0h");
  EXPECT_EQ(FormatSeconds(-1.0), "n/a");
}

TEST(FormatThroughputTest, Suffixes) {
  EXPECT_EQ(FormatThroughput(1.5e9), "1.50G");
  EXPECT_EQ(FormatThroughput(2.5e6), "2.50M");
  EXPECT_EQ(FormatThroughput(3.2e3), "3.2k");
  EXPECT_EQ(FormatThroughput(12.0), "12.0");
}

TEST(FormatCountTest, Suffixes) {
  EXPECT_EQ(FormatCount(1'810'000'000), "1.81B");
  EXPECT_EQ(FormatCount(5'020'000), "5.02M");
  EXPECT_EQ(FormatCount(2'500), "2.5k");
  EXPECT_EQ(FormatCount(42), "42");
}

}  // namespace
}  // namespace ga::harness
