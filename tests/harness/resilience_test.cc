// Hardened-runner behaviour under injected faults (docs/ROBUSTNESS.md):
// bounded retry for transient failures, quarantine for deterministic
// ones, wall-clock timeouts for stalls, and seed-deterministic fault
// sequences at any --jobs value.
#include "harness/runner.h"

#include <gtest/gtest.h>

#include <string>

#include "faults/faults.h"

namespace ga::harness {
namespace {

BenchmarkConfig FastConfig() {
  BenchmarkConfig config;
  config.scale_divisor = 16384;
  config.seed = 13;
  config.retry_backoff_seconds = 0.001;  // keep test wall time tiny
  return config;
}

JobSpec BfsJob() {
  JobSpec spec;
  spec.platform_id = "spmat";
  spec.dataset_id = "R1";
  spec.algorithm = Algorithm::kBfs;
  return spec;
}

// abort_at_loop is a one-shot ordinal fault: the first attempt aborts,
// the retry runs clean. Exactly the transient shape bounded retry is for.
TEST(ResilienceTest, TransientAbortIsRetriedToCompletion) {
  BenchmarkConfig config = FastConfig();
  config.fault_spec = "abort_at_loop=3";
  config.max_retries = 2;
  BenchmarkRunner runner(config);
  JobReport report = runner.RunWithPolicy(BfsJob());
  EXPECT_EQ(report.outcome, JobOutcome::kCompleted)
      << report.failure_cause << ": " << report.failure;
  EXPECT_EQ(report.attempts, 2);
  EXPECT_TRUE(report.output_validated);
}

// crash_at_superstep re-fires every attempt (a deterministic failure
// retry cannot fix): retries exhaust and the cell is quarantined.
TEST(ResilienceTest, DeterministicCrashExhaustsRetriesAndIsQuarantined) {
  BenchmarkConfig config = FastConfig();
  config.fault_spec = "crash_at_superstep=2";
  config.max_retries = 1;
  BenchmarkRunner runner(config);
  JobReport report = runner.RunWithPolicy(BfsJob());
  EXPECT_EQ(report.outcome, JobOutcome::kCrashed);
  EXPECT_EQ(report.attempts, 2);  // first try + one retry
  EXPECT_EQ(report.failure_code, StatusCode::kAborted);
  EXPECT_EQ(report.failure_cause, "worker-abort");
  EXPECT_FALSE(report.failure.empty());
}

// A stalled chunk trips the per-job wall timeout; the stall is one-shot,
// so the retry completes within the deadline.
TEST(ResilienceTest, StallTripsWallTimeoutThenRetrySucceeds) {
  BenchmarkConfig config = FastConfig();
  config.fault_spec = "stall_at_loop=1,stall_ms=600";
  config.job_timeout_seconds = 0.15;
  config.max_retries = 2;
  BenchmarkRunner runner(config);
  JobReport report = runner.RunWithPolicy(BfsJob());
  EXPECT_EQ(report.outcome, JobOutcome::kCompleted)
      << report.failure_cause << ": " << report.failure;
  EXPECT_GE(report.attempts, 2);
}

// An injected allocation failure is an out-of-memory crash: per the
// paper's harness it is a benchmark verdict, never retried.
TEST(ResilienceTest, AllocationFailureIsNotRetried) {
  BenchmarkConfig config = FastConfig();
  config.fault_spec = "alloc_fail_at_charge=1";
  config.max_retries = 3;
  BenchmarkRunner runner(config);
  JobReport report = runner.RunWithPolicy(BfsJob());
  EXPECT_EQ(report.outcome, JobOutcome::kCrashed);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_EQ(report.failure_code, StatusCode::kOutOfMemory);
  EXPECT_EQ(report.failure_cause, "out-of-memory");
}

// A malformed fault spec must not take the suite down: the job is
// quarantined as an infrastructure failure.
TEST(ResilienceTest, MalformedFaultSpecIsQuarantinedAsInfrastructure) {
  BenchmarkConfig config = FastConfig();
  config.fault_spec = "explode_at_random=yes";
  BenchmarkRunner runner(config);
  JobReport report = runner.RunWithPolicy(BfsJob());
  EXPECT_EQ(report.outcome, JobOutcome::kFailed);
  EXPECT_EQ(report.failure_cause, "infrastructure");
}

// The same plan (same seed) reproduces the same failure, byte for byte
// in the status message, across fresh runners and across host thread
// counts — the property that makes chaos runs debuggable.
TEST(ResilienceTest, FaultSequenceIsSeedDeterministicAcrossJobs) {
  std::string reference;
  for (int host_jobs : {1, 1, 2, 8}) {  // 1 twice: re-run reproducibility
    BenchmarkConfig config = FastConfig();
    config.host_jobs = host_jobs;
    config.fault_spec = "crash_at_superstep=2,seed=99";
    BenchmarkRunner runner(config);
    JobReport report = runner.RunWithPolicy(BfsJob());
    ASSERT_EQ(report.outcome, JobOutcome::kCrashed) << host_jobs;
    if (reference.empty()) {
      reference = report.failure;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(report.failure, reference) << "-j" << host_jobs;
    }
  }
}

}  // namespace
}  // namespace ga::harness
