#include "harness/results_db.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace ga::harness {
namespace {

JobReport MakeReport(const std::string& platform,
                     const std::string& dataset, Algorithm algorithm,
                     JobOutcome outcome, double tproc) {
  JobReport report;
  report.spec.platform_id = platform;
  report.spec.dataset_id = dataset;
  report.spec.algorithm = algorithm;
  report.outcome = outcome;
  report.tproc_seconds = tproc;
  report.makespan_seconds = tproc * 2;
  report.eps = 1000.0;
  report.evps = 1100.0;
  report.output_validated = outcome == JobOutcome::kCompleted;
  if (outcome != JobOutcome::kCompleted) report.failure = "boom";
  return report;
}

TEST(ResultsDatabaseTest, RecordsAndFiltersCompleted) {
  ResultsDatabase db(BenchmarkConfig{});
  db.Record(MakeReport("spmat", "R1", Algorithm::kBfs,
                       JobOutcome::kCompleted, 1.0));
  db.Record(MakeReport("bsplite", "R1", Algorithm::kBfs,
                       JobOutcome::kCrashed, 0.0));
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.Completed().size(), 1u);
}

TEST(ResultsDatabaseTest, BestForPicksLowestTproc) {
  ResultsDatabase db(BenchmarkConfig{});
  db.Record(MakeReport("bsplite", "R1", Algorithm::kBfs,
                       JobOutcome::kCompleted, 20.0));
  db.Record(MakeReport("spmat", "R1", Algorithm::kBfs,
                       JobOutcome::kCompleted, 0.5));
  db.Record(MakeReport("pushpull", "R1", Algorithm::kPageRank,
                       JobOutcome::kCompleted, 0.1));  // other workload
  const JobReport* best = db.BestFor("R1", Algorithm::kBfs);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->spec.platform_id, "spmat");
  EXPECT_EQ(db.BestFor("R9", Algorithm::kBfs), nullptr);
}

TEST(ResultsDatabaseTest, JsonContainsConfigurationAndRecords) {
  BenchmarkConfig config;
  config.scale_divisor = 512;
  ResultsDatabase db(config);
  db.Record(MakeReport("gaslite", "D300", Algorithm::kWcc,
                       JobOutcome::kCompleted, 3.25));
  db.Record(MakeReport("dataflow", "D300", Algorithm::kCdlp,
                       JobOutcome::kCrashed, 0.0));
  const std::string json = db.ToJson();
  EXPECT_NE(json.find("\"scale_divisor\":512"), std::string::npos);
  EXPECT_NE(json.find("\"platform\":\"gaslite\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"crashed\""), std::string::npos);
  EXPECT_NE(json.find("\"failure\":\"boom\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ResultsDatabaseTest, WritesJsonFile) {
  ResultsDatabase db(BenchmarkConfig{});
  db.Record(MakeReport("spmat", "R1", Algorithm::kBfs,
                       JobOutcome::kCompleted, 1.0));
  const std::string path =
      (std::filesystem::temp_directory_path() / "ga_results_test.json")
          .string();
  ASSERT_TRUE(db.WriteJsonFile(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, db.ToJson());
  std::remove(path.c_str());
}

TEST(ResultsDatabaseTest, WriteToBadPathFails) {
  ResultsDatabase db(BenchmarkConfig{});
  EXPECT_FALSE(db.WriteJsonFile("/nonexistent/dir/results.json").ok());
}

}  // namespace
}  // namespace ga::harness
