#include "harness/results_db.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace ga::harness {
namespace {

JobReport MakeReport(const std::string& platform,
                     const std::string& dataset, Algorithm algorithm,
                     JobOutcome outcome, double tproc) {
  JobReport report;
  report.spec.platform_id = platform;
  report.spec.dataset_id = dataset;
  report.spec.algorithm = algorithm;
  report.outcome = outcome;
  report.tproc_seconds = tproc;
  report.makespan_seconds = tproc * 2;
  report.eps = 1000.0;
  report.evps = 1100.0;
  report.output_validated = outcome == JobOutcome::kCompleted;
  if (outcome != JobOutcome::kCompleted) report.failure = "boom";
  return report;
}

TEST(ResultsDatabaseTest, RecordsAndFiltersCompleted) {
  ResultsDatabase db(BenchmarkConfig{});
  db.Record(MakeReport("spmat", "R1", Algorithm::kBfs,
                       JobOutcome::kCompleted, 1.0));
  db.Record(MakeReport("bsplite", "R1", Algorithm::kBfs,
                       JobOutcome::kCrashed, 0.0));
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.Completed().size(), 1u);
}

TEST(ResultsDatabaseTest, BestForPicksLowestTproc) {
  ResultsDatabase db(BenchmarkConfig{});
  db.Record(MakeReport("bsplite", "R1", Algorithm::kBfs,
                       JobOutcome::kCompleted, 20.0));
  db.Record(MakeReport("spmat", "R1", Algorithm::kBfs,
                       JobOutcome::kCompleted, 0.5));
  db.Record(MakeReport("pushpull", "R1", Algorithm::kPageRank,
                       JobOutcome::kCompleted, 0.1));  // other workload
  const JobReport* best = db.BestFor("R1", Algorithm::kBfs);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->spec.platform_id, "spmat");
  EXPECT_EQ(db.BestFor("R9", Algorithm::kBfs), nullptr);
}

TEST(ResultsDatabaseTest, JsonContainsConfigurationAndRecords) {
  BenchmarkConfig config;
  config.scale_divisor = 512;
  ResultsDatabase db(config);
  db.Record(MakeReport("gaslite", "D300", Algorithm::kWcc,
                       JobOutcome::kCompleted, 3.25));
  db.Record(MakeReport("dataflow", "D300", Algorithm::kCdlp,
                       JobOutcome::kCrashed, 0.0));
  const std::string json = db.ToJson();
  EXPECT_NE(json.find("\"scale_divisor\":512"), std::string::npos);
  EXPECT_NE(json.find("\"platform\":\"gaslite\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"crashed\""), std::string::npos);
  EXPECT_NE(json.find("\"failure\":\"boom\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ResultsDatabaseTest, WritesJsonFile) {
  ResultsDatabase db(BenchmarkConfig{});
  db.Record(MakeReport("spmat", "R1", Algorithm::kBfs,
                       JobOutcome::kCompleted, 1.0));
  const std::string path =
      (std::filesystem::temp_directory_path() / "ga_results_test.json")
          .string();
  ASSERT_TRUE(db.WriteJsonFile(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, db.ToJson());
  std::remove(path.c_str());
}

TEST(ResultsDatabaseTest, WriteToBadPathFails) {
  ResultsDatabase db(BenchmarkConfig{});
  EXPECT_FALSE(db.WriteJsonFile("/nonexistent/dir/results.json").ok());
}

TEST(ResultsJsonlTest, AppendReadRoundTripsRecords) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ga_jsonl_roundtrip.jsonl")
          .string();
  std::remove(path.c_str());
  ASSERT_TRUE(AppendRecord(path, MakeReport("spmat", "R1", Algorithm::kBfs,
                                            JobOutcome::kCompleted, 1.5))
                  .ok());
  ASSERT_TRUE(AppendRecord(path, MakeReport("bsplite", "R2", Algorithm::kWcc,
                                            JobOutcome::kCrashed, 0.0))
                  .ok());
  auto records = ReadJsonlRecords(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0],
            RecordJson(MakeReport("spmat", "R1", Algorithm::kBfs,
                                  JobOutcome::kCompleted, 1.5)));
  EXPECT_NE((*records)[1].find("\"outcome\":\"crashed\""),
            std::string::npos);
  std::remove(path.c_str());
}

// The serve daemon's executors — and multiple daemons sharing one log —
// append concurrently. Each record is one O_APPEND write(), so lines
// never tear: every line read back must parse as a complete record.
TEST(ResultsJsonlTest, ConcurrentAppendersNeverTearLines) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ga_jsonl_concurrent.jsonl")
          .string();
  std::remove(path.c_str());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&path, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Distinct payload sizes per writer so torn interleavings could
        // not accidentally reassemble into valid records.
        JobReport report = MakeReport(
            "writer" + std::to_string(t) + std::string(t * 7, 'x'),
            "D" + std::to_string(i), Algorithm::kPageRank,
            JobOutcome::kCompleted, t + i * 0.001);
        ASSERT_TRUE(AppendRecord(path, report).ok());
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  auto records = ReadJsonlRecords(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(records->size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // Every writer's every record arrived exactly once.
  for (int t = 0; t < kThreads; ++t) {
    const std::string marker =
        "\"platform\":\"writer" + std::to_string(t) + std::string(t * 7, 'x') +
        "\"";
    int count = 0;
    for (const std::string& line : *records) {
      if (line.find(marker) != std::string::npos) ++count;
    }
    EXPECT_EQ(count, kPerThread) << "writer " << t;
  }
  std::remove(path.c_str());
}

TEST(ResultsJsonlTest, ReadRejectsTornRecords) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ga_jsonl_torn.jsonl")
          .string();
  {
    std::ofstream out(path);
    out << RecordJson(MakeReport("spmat", "R1", Algorithm::kBfs,
                                 JobOutcome::kCompleted, 1.0))
        << "\n";
    out << "{\"outcome\":\"comp";  // torn mid-record
  }
  auto records = ReadJsonlRecords(path);
  ASSERT_FALSE(records.ok());
  EXPECT_NE(records.status().message().find("torn or corrupt"),
            std::string::npos)
      << records.status().ToString();
  std::remove(path.c_str());
}

TEST(ResultsJsonlTest, MergeJsonlBuildsTheBatchDatabaseShape) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ga_jsonl_merge.jsonl")
          .string();
  std::remove(path.c_str());
  ASSERT_TRUE(AppendRecord(path, MakeReport("spmat", "R1", Algorithm::kBfs,
                                            JobOutcome::kCompleted, 1.0))
                  .ok());
  ASSERT_TRUE(AppendRecord(path, MakeReport("bsplite", "R1", Algorithm::kBfs,
                                            JobOutcome::kCompleted, 2.0))
                  .ok());
  BenchmarkConfig config;
  config.scale_divisor = 256;
  auto merged = MergeJsonl(path, config);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_NE(merged->find("\"scale_divisor\":256"), std::string::npos);
  EXPECT_NE(merged->find("\"platform\":\"spmat\""), std::string::npos);
  EXPECT_NE(merged->find("\"platform\":\"bsplite\""), std::string::npos);
  EXPECT_EQ(std::count(merged->begin(), merged->end(), '{'),
            std::count(merged->begin(), merged->end(), '}'));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ga::harness
