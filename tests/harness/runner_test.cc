#include "harness/runner.h"

#include <gtest/gtest.h>

namespace ga::harness {
namespace {

BenchmarkConfig FastConfig() {
  BenchmarkConfig config;
  config.scale_divisor = 16384;
  config.seed = 13;
  return config;
}

TEST(BenchmarkRunnerTest, CompletedJobHasValidatedOutputAndMetrics) {
  BenchmarkRunner runner(FastConfig());
  JobSpec spec;
  spec.platform_id = "spmat";
  spec.dataset_id = "R1";
  spec.algorithm = Algorithm::kBfs;
  auto report = runner.Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, JobOutcome::kCompleted);
  EXPECT_TRUE(report->output_validated);
  EXPECT_GT(report->tproc_seconds, 0.0);
  EXPECT_GT(report->makespan_seconds, report->tproc_seconds);
  EXPECT_GT(report->eps, 0.0);
  EXPECT_GT(report->evps, report->eps);  // EVPS adds vertices
}

TEST(BenchmarkRunnerTest, UnknownPlatformOrDatasetIsStatusError) {
  BenchmarkRunner runner(FastConfig());
  JobSpec spec;
  spec.platform_id = "nope";
  spec.dataset_id = "R1";
  EXPECT_FALSE(runner.Run(spec).ok());
  spec.platform_id = "spmat";
  spec.dataset_id = "R99";
  EXPECT_FALSE(runner.Run(spec).ok());
}

TEST(BenchmarkRunnerTest, UnsupportedWorkloadReported) {
  BenchmarkRunner runner(FastConfig());
  JobSpec spec;
  spec.platform_id = "pushpull";  // no LCC (paper Figure 6 "NA")
  spec.dataset_id = "R1";
  spec.algorithm = Algorithm::kLcc;
  auto report = runner.Run(spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, JobOutcome::kUnsupported);
}

TEST(BenchmarkRunnerTest, SingleMachinePlatformOnClusterUnsupported) {
  BenchmarkRunner runner(FastConfig());
  JobSpec spec;
  spec.platform_id = "nativekernel";
  spec.dataset_id = "R1";
  spec.num_machines = 4;
  auto report = runner.Run(spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, JobOutcome::kUnsupported);
}

TEST(BenchmarkRunnerTest, RepetitionsProduceJitteredSamples) {
  BenchmarkRunner runner(FastConfig());
  JobSpec spec;
  spec.platform_id = "gaslite";
  spec.dataset_id = "R2";
  spec.algorithm = Algorithm::kBfs;
  spec.repetitions = 10;
  auto report = runner.Run(spec);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->tproc_samples.size(), 10u);
  EXPECT_GT(report->tproc_cv, 0.0);
  // All platforms stay below 10% CV (paper §4.7); allow slack for the
  // small sample size.
  EXPECT_LT(report->tproc_cv, 0.12);
}

TEST(BenchmarkRunnerTest, JitterIsDeterministic) {
  BenchmarkRunner runner_a(FastConfig());
  BenchmarkRunner runner_b(FastConfig());
  JobSpec spec;
  spec.platform_id = "spmat";
  spec.dataset_id = "R2";
  spec.repetitions = 5;
  auto a = runner_a.Run(spec);
  auto b = runner_b.Run(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->tproc_samples, b->tproc_samples);
}

TEST(BenchmarkRunnerTest, VariabilityOrderingFollowsTable11) {
  // GraphMat and PGX.D vary most, PowerGraph least (paper §4.7).
  BenchmarkRunner runner(FastConfig());
  auto cv_of = [&](const char* platform) {
    JobSpec spec;
    spec.platform_id = platform;
    spec.dataset_id = "R2";
    spec.repetitions = 10;
    auto report = runner.Run(spec);
    EXPECT_TRUE(report.ok());
    return report->tproc_cv;
  };
  const double gaslite = cv_of("gaslite");
  const double spmat = cv_of("spmat");
  const double pushpull = cv_of("pushpull");
  EXPECT_LT(gaslite, spmat);
  EXPECT_LT(gaslite, pushpull);
}

TEST(BenchmarkRunnerTest, CrashedJobReportsOutcome) {
  BenchmarkConfig config = FastConfig();
  config.machine_memory_bytes = 64LL * 1024;  // absurdly tight budget
  BenchmarkRunner runner(config);
  JobSpec spec;
  spec.platform_id = "bsplite";
  spec.dataset_id = "R2";
  auto report = runner.Run(spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, JobOutcome::kCrashed);
  EXPECT_FALSE(report->failure.empty());
}

TEST(BenchmarkRunnerTest, SlaBreachReportsTimeout) {
  BenchmarkConfig config = FastConfig();
  config.sla_projected_seconds = 1e-9;  // nothing can meet this
  BenchmarkRunner runner(config);
  JobSpec spec;
  spec.platform_id = "spmat";
  spec.dataset_id = "R1";
  auto report = runner.Run(spec);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->outcome, JobOutcome::kTimedOut);
}

TEST(BenchmarkRunnerTest, EveryPlatformValidatesOnEveryAlgorithm) {
  // End-to-end sweep through the harness on a small weighted dataset.
  BenchmarkRunner runner(FastConfig());
  for (const std::string& platform : platform::AllPlatformIds()) {
    for (Algorithm algorithm : kAllAlgorithms) {
      JobSpec spec;
      spec.platform_id = platform;
      spec.dataset_id = "R4";  // weighted: SSSP works
      spec.algorithm = algorithm;
      auto report = runner.Run(spec);
      ASSERT_TRUE(report.ok()) << platform;
      if (report->outcome == JobOutcome::kCompleted) {
        EXPECT_TRUE(report->output_validated)
            << platform << "/" << AlgorithmName(algorithm);
      } else {
        // The only acceptable non-completions at this scale: unsupported
        // combinations, LCC memory blowups, and GraphX's CDLP (which the
        // paper reports as unable to complete at any scale).
        const bool graphx_cdlp =
            platform == "dataflow" && algorithm == Algorithm::kCdlp;
        EXPECT_TRUE(report->outcome == JobOutcome::kUnsupported ||
                    algorithm == Algorithm::kLcc || graphx_cdlp)
            << platform << "/" << AlgorithmName(algorithm) << ": "
            << report->failure;
      }
    }
  }
}

}  // namespace
}  // namespace ga::harness
