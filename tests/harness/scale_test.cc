#include "harness/scale.h"

#include <gtest/gtest.h>

namespace ga::harness {
namespace {

TEST(ScaleTest, MatchesPaperTable3Values) {
  EXPECT_NEAR(ComputeScale(2'390'000, 5'020'000), 6.9, 1e-9);   // wiki-talk
  EXPECT_NEAR(ComputeScale(830'000, 17'900'000), 7.3, 1e-9);    // kgs
  EXPECT_NEAR(ComputeScale(610'000, 50'900'000), 7.7, 1e-9);    // dota
  EXPECT_NEAR(ComputeScale(65'600'000, 1'810'000'000), 9.3, 1e-9);
}

TEST(ScaleTest, MatchesPaperTable4Values) {
  EXPECT_NEAR(ComputeScale(1'670'000, 102'000'000), 8.0, 1e-9);  // D100
  EXPECT_NEAR(ComputeScale(4'350'000, 304'000'000), 8.5, 1e-9);  // D300
  EXPECT_NEAR(ComputeScale(12'800'000, 1'010'000'000), 9.0, 1e-9);
  EXPECT_NEAR(ComputeScale(2'400'000, 64'200'000), 7.8, 1e-9);   // G22
  EXPECT_NEAR(ComputeScale(32'800'000, 1'050'000'000), 9.0, 1e-9);
}

// Table 2 of the paper, row by row.
TEST(ScaleClassTest, Table2Mapping) {
  EXPECT_EQ(ScaleClassLabel(6.9), "2XS");
  EXPECT_EQ(ScaleClassLabel(7.0), "XS");
  EXPECT_EQ(ScaleClassLabel(7.4), "XS");
  EXPECT_EQ(ScaleClassLabel(7.5), "S");
  EXPECT_EQ(ScaleClassLabel(7.9), "S");
  EXPECT_EQ(ScaleClassLabel(8.0), "M");
  EXPECT_EQ(ScaleClassLabel(8.4), "M");
  EXPECT_EQ(ScaleClassLabel(8.5), "L");
  EXPECT_EQ(ScaleClassLabel(8.9), "L");
  EXPECT_EQ(ScaleClassLabel(9.0), "XL");
  EXPECT_EQ(ScaleClassLabel(9.4), "XL");
  EXPECT_EQ(ScaleClassLabel(9.5), "2XL");
}

// "with extra (X) prepended to indicate smaller and larger classes to
// make extremes such as 2XS and 3XL possible" (Section 2.2.4).
TEST(ScaleClassTest, OpenEndedExtremes) {
  EXPECT_EQ(ScaleClassLabel(6.4), "3XS");
  EXPECT_EQ(ScaleClassLabel(5.9), "4XS");
  EXPECT_EQ(ScaleClassLabel(10.0), "3XL");
  EXPECT_EQ(ScaleClassLabel(10.5), "4XL");
}

TEST(ScaleClassTest, BoundariesAreHalfOpen) {
  // [8.5, 9.0) is L; exactly 9.0 is XL.
  EXPECT_EQ(ScaleClassLabel(8.999), "L");
  EXPECT_EQ(ScaleClassLabel(9.0), "XL");
}

TEST(ScaleClassTest, GraphSizeOverload) {
  // datagen-300: scale 8.5 -> L.
  EXPECT_EQ(ScaleClassLabel(4'350'000, 304'000'000), "L");
}

}  // namespace
}  // namespace ga::harness
