// Determinism contracts of the mutation layer itself (DESIGN.md §12):
// applying the same delta stream must yield bit-identical child CSRs at
// any --jobs value; re-chunking one stream into different epoch sizes
// must end on the same graph (the upsert/last-wins semantics exist
// precisely to make application chunking-invariant); and platform jobs
// on a mutated graph must keep the exec determinism contract — equal
// WorkLedgers and simulated clocks across host thread counts.
#include "mutate/delta.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "core/exec/thread_pool.h"
#include "core/rng.h"
#include "datagen/graph500.h"
#include "platforms/platform.h"
#include "testing/graph_fixtures.h"

namespace ga::mutate {
namespace {

Graph TestGraph(bool directed = true) {
  datagen::Graph500Config config;
  config.scale = 9;
  config.num_edges = 3000;
  config.directedness =
      directed ? Directedness::kDirected : Directedness::kUndirected;
  config.weighted = true;
  config.seed = 13;
  auto graph = datagen::GenerateGraph500(config);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(DeltaDeterminismTest, SameStreamAnyJobsBitIdenticalChain) {
  const Graph start = TestGraph();
  // The delta stream is a pure function of (parent, spec, rng), so
  // replaying the same seeds per epoch gives every run the same stream.
  const RandomBatchSpec spec{/*inserts=*/40, /*deletes=*/40,
                             /*new_vertex_every=*/7};
  constexpr int kEpochs = 4;

  // Serial chain is the baseline.
  std::vector<Graph> baseline;
  {
    const Graph* current = &start;
    MutationResult keep;
    SplitMix64 rng(1234);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      auto applied = ApplyDeltas(*current, RandomDeltaBatch(*current, spec,
                                                            rng));
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
      keep = std::move(*applied);
      baseline.push_back(std::move(keep.graph));
      current = &baseline.back();
    }
  }

  for (int jobs : {2, 8}) {
    exec::ThreadPool pool(jobs);
    const Graph* current = &start;
    MutationResult keep;
    SplitMix64 rng(1234);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      auto applied = ApplyDeltas(*current,
                                 RandomDeltaBatch(*current, spec, rng),
                                 &pool);
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
      EXPECT_TRUE(GraphsBitIdentical(applied->graph, baseline[epoch]))
          << "epoch " << epoch << " CSR differs at --jobs " << jobs;
      keep = std::move(*applied);
      current = &keep.graph;
    }
  }
}

TEST(DeltaDeterminismTest, RechunkedEpochsReachTheSameGraph) {
  const Graph start = TestGraph(/*directed=*/false);
  // A stream with deliberate overlap: weight upserts on one edge,
  // insert-then-delete and delete-then-insert pairs that will land in
  // different chunks depending on the epoch size.
  const VertexId a = start.ExternalId(1);
  const VertexId b = start.ExternalId(2);
  const VertexId c = start.ExternalId(3);
  const VertexId d = start.ExternalId(4);
  std::vector<EdgeDelta> stream = {
      {DeltaOp::kInsertEdge, 0, a, b, 1.5},
      {DeltaOp::kInsertEdge, 0, c, d, 2.0},
      {DeltaOp::kInsertEdge, 0, b, a, 7.25},  // upsert, canonical dup of a-b
      {DeltaOp::kDeleteEdge, 0, c, d, 0.0},
      {DeltaOp::kInsertEdge, 0, a, c, 3.0},
      {DeltaOp::kDeleteEdge, 0, a, c, 0.0},
      {DeltaOp::kInsertEdge, 0, a, c, 4.5},
      {DeltaOp::kAddVertex, 0, 1u << 20, 0, 1.0},
      {DeltaOp::kInsertEdge, 0, 1u << 20, b, 9.0},
  };
  SplitMix64 rng(777);
  const DeltaBatch random_tail =
      RandomDeltaBatch(start, {/*inserts=*/30, /*deletes=*/30, 0}, rng);
  stream.insert(stream.end(), random_tail.ops.begin(),
                random_tail.ops.end());

  // Reference: everything in one epoch.
  DeltaBatch one_batch;
  one_batch.ops = stream;
  auto all_at_once = ApplyDeltas(start, one_batch);
  ASSERT_TRUE(all_at_once.ok()) << all_at_once.status().ToString();

  for (std::size_t chunk : {1u, 3u, 7u, 16u}) {
    const Graph* current = &start;
    MutationResult keep;
    for (std::size_t begin = 0; begin < stream.size(); begin += chunk) {
      DeltaBatch batch;
      const std::size_t end = std::min(begin + chunk, stream.size());
      batch.ops.assign(stream.begin() + begin, stream.begin() + end);
      auto applied = ApplyDeltas(*current, batch);
      ASSERT_TRUE(applied.ok())
          << "chunk size " << chunk << " at op " << begin << ": "
          << applied.status().ToString();
      keep = std::move(*applied);
      current = &keep.graph;
    }
    EXPECT_TRUE(GraphsBitIdentical(*current, all_at_once->graph))
        << "chunk size " << chunk
        << " ends on a different graph than one-shot application";
  }
}

TEST(DeltaDeterminismTest, LedgersIdenticalAcrossJobsOnMutatedGraph) {
  // The exec determinism contract must survive mutation: platform jobs
  // on an ApplyDeltas child report bit-identical outputs, WorkLedgers
  // and simulated clocks at 1, 2 and 8 host threads.
  const Graph start = TestGraph();
  SplitMix64 rng(4321);
  auto applied = ApplyDeltas(
      start,
      RandomDeltaBatch(start, {/*inserts=*/60, /*deletes=*/60,
                               /*new_vertex_every=*/5},
                       rng));
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  const Graph& mutated = applied->graph;

  AlgorithmParams params;
  params.source_vertex = mutated.ExternalId(0);
  params.pagerank_iterations = 6;

  for (const char* platform_id : {"spmat", "bsplite"}) {
    for (Algorithm algorithm : {Algorithm::kPageRank, Algorithm::kWcc}) {
      auto platform = platform::CreatePlatform(platform_id);
      ASSERT_TRUE(platform.ok());
      platform::ExecutionEnvironment env;
      env.num_machines = 2;
      env.threads_per_machine = 8;
      env.memory_budget_bytes = 1LL << 30;
      env.host_pool = nullptr;
      const std::string what = std::string(platform_id) + "/" +
                               std::string(AlgorithmName(algorithm));
      auto baseline = (*platform)->RunJob(mutated, algorithm, params, env);
      ASSERT_TRUE(baseline.ok()) << what << ": "
                                 << baseline.status().ToString();
      for (int jobs : {2, 8}) {
        exec::ThreadPool pool(jobs);
        env.host_pool = &pool;
        auto run = (*platform)->RunJob(mutated, algorithm, params, env);
        ASSERT_TRUE(run.ok()) << what << ": " << run.status().ToString();
        EXPECT_EQ(baseline->output.int_values, run->output.int_values)
            << what;
        ASSERT_EQ(baseline->output.double_values.size(),
                  run->output.double_values.size())
            << what;
        if (!baseline->output.double_values.empty()) {
          EXPECT_EQ(
              std::memcmp(baseline->output.double_values.data(),
                          run->output.double_values.data(),
                          baseline->output.double_values.size() *
                              sizeof(double)),
              0)
              << what << " at --jobs " << jobs;
        }
        EXPECT_EQ(baseline->metrics.ledger.compute_ops,
                  run->metrics.ledger.compute_ops)
            << what;
        EXPECT_EQ(baseline->metrics.ledger.messages,
                  run->metrics.ledger.messages)
            << what;
        EXPECT_EQ(baseline->metrics.ledger.remote_bytes,
                  run->metrics.ledger.remote_bytes)
            << what;
        EXPECT_EQ(baseline->metrics.supersteps, run->metrics.supersteps)
            << what;
        EXPECT_EQ(baseline->metrics.processing_sim_seconds,
                  run->metrics.processing_sim_seconds)
            << what;
        EXPECT_EQ(baseline->metrics.makespan_sim_seconds,
                  run->metrics.makespan_sim_seconds)
            << what;
      }
    }
  }
}

}  // namespace
}  // namespace ga::mutate
