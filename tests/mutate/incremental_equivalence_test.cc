// The recompute-equivalence oracle suite (ISSUE PR7 tentpole): after
// every mutation epoch, IncrementalPageRank::output() and
// IncrementalWcc::output() must be BYTE-IDENTICAL to reference::PageRank
// / reference::Wcc run from scratch on that epoch's graph — on directed
// (R1) and undirected (G22) registry datasets, across randomized
// insert-only / delete-only / mixed / vertex-minting batches, and at
// --jobs 1, 2 and 8. The oracle is memcmp, not EXPECT_NEAR: an
// incremental engine may only skip work it can prove reproduces the
// reference's floating-point stream exactly.
#include "mutate/incremental.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "algo/reference.h"
#include "core/exec/thread_pool.h"
#include "core/rng.h"
#include "harness/dataset_registry.h"
#include "mutate/delta.h"
#include "testing/graph_fixtures.h"

namespace ga::mutate {
namespace {

constexpr int kIterations = 10;
constexpr double kDamping = 0.85;

harness::BenchmarkConfig SmallConfig() {
  harness::BenchmarkConfig config;
  config.scale_divisor = 16384;  // tiny paper-catalogue instances
  config.seed = 7;
  return config;
}

void ExpectOracleMatch(const IncrementalPageRank& pagerank,
                       const IncrementalWcc& wcc, const Graph& graph,
                       exec::ThreadPool* pool, const std::string& what) {
  auto full_pr = reference::PageRank(graph, kIterations, kDamping, pool);
  ASSERT_TRUE(full_pr.ok()) << what << ": " << full_pr.status().ToString();
  const std::vector<double>& expected = full_pr->double_values;
  const std::vector<double>& actual = pagerank.output().double_values;
  ASSERT_EQ(expected.size(), actual.size()) << what;
  if (!expected.empty()) {
    EXPECT_EQ(std::memcmp(expected.data(), actual.data(),
                          expected.size() * sizeof(double)),
              0)
        << what << ": incremental PageRank diverged from recompute";
  }

  auto full_wcc = reference::Wcc(graph, pool);
  ASSERT_TRUE(full_wcc.ok()) << what << ": "
                             << full_wcc.status().ToString();
  EXPECT_EQ(full_wcc->int_values, wcc.output().int_values)
      << what << ": incremental WCC diverged from recompute";
}

/// Drives a chain of randomized epochs over `start` and oracle-checks
/// both engines after every epoch. Returns the concatenated outputs so
/// callers can additionally compare runs across --jobs values.
struct ChainOutputs {
  std::vector<double> pagerank;  // all epochs, concatenated
  std::vector<std::int64_t> wcc;
};

void DriveRandomChain(const Graph& start, exec::ThreadPool* pool,
                      const std::string& what, ChainOutputs* outputs) {
  // Epoch schedule: mixed, insert-only, delete-only, vertex-minting,
  // then mixed again on the grown graph.
  const RandomBatchSpec kSchedule[] = {
      {/*inserts=*/12, /*deletes=*/12, /*new_vertex_every=*/0},
      {/*inserts=*/20, /*deletes=*/0, /*new_vertex_every=*/0},
      {/*inserts=*/0, /*deletes=*/20, /*new_vertex_every=*/0},
      {/*inserts=*/9, /*deletes=*/3, /*new_vertex_every=*/3},
      {/*inserts=*/10, /*deletes=*/10, /*new_vertex_every=*/0},
  };

  IncrementalPageRank pagerank(kIterations, kDamping);
  IncrementalWcc wcc;
  EXPECT_TRUE(pagerank.Initialize(start, pool).ok());
  EXPECT_TRUE(wcc.Initialize(start, pool).ok());
  ExpectOracleMatch(pagerank, wcc, start, pool, what + "/init");

  SplitMix64 rng(start.num_vertices() * 1000003ULL + 17);
  const Graph* current = &start;
  MutationResult chain_head;
  int epoch = 0;
  for (const RandomBatchSpec& spec : kSchedule) {
    ++epoch;
    const DeltaBatch batch = RandomDeltaBatch(*current, spec, rng);
    auto applied = ApplyDeltas(*current, batch, pool);
    ASSERT_TRUE(applied.ok()) << what << "/epoch" << epoch << ": "
                              << applied.status().ToString();
    EXPECT_TRUE(pagerank.Update(*applied, pool).ok());
    EXPECT_TRUE(wcc.Update(*applied, pool).ok());
    ExpectOracleMatch(pagerank, wcc, applied->graph, pool,
                      what + "/epoch" + std::to_string(epoch));
    const std::vector<double>& pr = pagerank.output().double_values;
    outputs->pagerank.insert(outputs->pagerank.end(), pr.begin(),
                             pr.end());
    const std::vector<std::int64_t>& cc = wcc.output().int_values;
    outputs->wcc.insert(outputs->wcc.end(), cc.begin(), cc.end());
    chain_head = std::move(*applied);
    current = &chain_head.graph;
  }
  EXPECT_EQ(pagerank.stats().epochs, epoch);
  EXPECT_EQ(wcc.stats().epochs, epoch);
}

void ExpectChainIdenticalAcrossJobs(const Graph& start,
                                    const std::string& what) {
  ChainOutputs serial;
  DriveRandomChain(start, nullptr, what + "/j1", &serial);
  for (int jobs : {2, 8}) {
    exec::ThreadPool pool(jobs);
    ChainOutputs threaded;
    DriveRandomChain(start, &pool, what + "/j" + std::to_string(jobs),
                     &threaded);
    ASSERT_EQ(serial.pagerank.size(), threaded.pagerank.size()) << what;
    EXPECT_EQ(std::memcmp(serial.pagerank.data(), threaded.pagerank.data(),
                          serial.pagerank.size() * sizeof(double)),
              0)
        << what << ": PageRank chain differs between --jobs 1 and "
        << jobs;
    EXPECT_EQ(serial.wcc, threaded.wcc)
        << what << ": WCC chain differs between --jobs 1 and " << jobs;
  }
}

TEST(IncrementalEquivalenceTest, RandomChainDirectedR1AcrossJobs) {
  harness::DatasetRegistry registry(SmallConfig());
  auto graph = registry.Load("R1");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ASSERT_TRUE((*graph)->is_directed());
  ExpectChainIdenticalAcrossJobs(**graph, "R1");
}

TEST(IncrementalEquivalenceTest, RandomChainUndirectedG22AcrossJobs) {
  harness::DatasetRegistry registry(SmallConfig());
  auto graph = registry.Load("G22");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ASSERT_FALSE((*graph)->is_directed());
  ExpectChainIdenticalAcrossJobs(**graph, "G22");
}

TEST(IncrementalEquivalenceTest, UndirectedChainStaysIncremental) {
  // The reason G22 is the sweep default: on undirected graphs only
  // isolated vertices dangle, RandomDeltaBatch keeps the isolated set
  // invariant, so the dangling-mass history matches bitwise and the
  // engine must never trip the full-sweep fallback.
  harness::DatasetRegistry registry(SmallConfig());
  auto graph = registry.Load("G22");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  IncrementalPageRank pagerank(kIterations, kDamping);
  ASSERT_TRUE(pagerank.Initialize(**graph).ok());
  SplitMix64 rng(99);
  const DeltaBatch batch =
      RandomDeltaBatch(**graph, {/*inserts=*/4, /*deletes=*/4, 0}, rng);
  auto applied = ApplyDeltas(**graph, batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_TRUE(pagerank.Update(*applied).ok());
  EXPECT_EQ(pagerank.stats().full_recomputes, 0);
  EXPECT_GT(pagerank.stats().incremental_iterations, 0);
  EXPECT_EQ(pagerank.stats().full_sweep_iterations, 0)
      << "small undirected churn should never trip the dangling fallback";
}

TEST(IncrementalEquivalenceTest, ValuePruningKeepsDirtyWaveLocal) {
  // On a large cycle the rank perturbation from one chord insert and
  // one safe delete can only travel one hop per iteration, so the
  // dirty wave must stay a tiny fraction of a full recompute's
  // n * iterations gathers — this is the pruning actually paying off,
  // not just matching the oracle.
  const int n = 4096;
  const Graph start = testing::MakeUndirectedCycle(n);
  IncrementalPageRank pagerank(kIterations, kDamping);
  ASSERT_TRUE(pagerank.Initialize(start).ok());

  DeltaBatch batch;
  batch.ops.push_back({DeltaOp::kInsertEdge, 0, 100, 2100, 1.0});
  batch.ops.push_back({DeltaOp::kDeleteEdge, 0, 3000, 3001, 1.0});
  auto applied = ApplyDeltas(start, batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_TRUE(pagerank.Update(*applied).ok());
  EXPECT_EQ(pagerank.stats().full_sweep_iterations, 0);
  EXPECT_GT(pagerank.stats().dirty_recomputes, 0);
  EXPECT_LT(pagerank.stats().dirty_recomputes, n)
      << "the dirty wave covered a whole graph's worth of gathers";

  IncrementalWcc wcc;
  ASSERT_TRUE(wcc.Initialize(start).ok());
  ASSERT_TRUE(wcc.Update(*applied).ok());
  ExpectOracleMatch(pagerank, wcc, applied->graph, nullptr, "cycle");
}

// --- targeted batch-semantics cases on small fixtures -------------------

/// Applies `batch` and checks both engines against the oracle.
void ExpectEpochMatchesOracle(const Graph& start, const DeltaBatch& batch,
                              const std::string& what) {
  IncrementalPageRank pagerank(kIterations, kDamping);
  IncrementalWcc wcc;
  ASSERT_TRUE(pagerank.Initialize(start).ok());
  ASSERT_TRUE(wcc.Initialize(start).ok());
  auto applied = ApplyDeltas(start, batch);
  ASSERT_TRUE(applied.ok()) << what << ": " << applied.status().ToString();
  ASSERT_TRUE(pagerank.Update(*applied).ok());
  ASSERT_TRUE(wcc.Update(*applied).ok());
  ExpectOracleMatch(pagerank, wcc, applied->graph, nullptr, what);
}

TEST(IncrementalEquivalenceTest, EmptyBatchIsIdentity) {
  const Graph start = testing::MakeUndirectedCycle(12);
  IncrementalPageRank pagerank(kIterations, kDamping);
  IncrementalWcc wcc;
  ASSERT_TRUE(pagerank.Initialize(start).ok());
  ASSERT_TRUE(wcc.Initialize(start).ok());
  const std::vector<double> before = pagerank.output().double_values;

  auto applied = ApplyDeltas(start, DeltaBatch{});
  ASSERT_TRUE(applied.ok());
  ASSERT_TRUE(pagerank.Update(*applied).ok());
  ASSERT_TRUE(wcc.Update(*applied).ok());
  EXPECT_EQ(std::memcmp(before.data(),
                        pagerank.output().double_values.data(),
                        before.size() * sizeof(double)),
            0);
  EXPECT_EQ(pagerank.stats().dirty_recomputes, 0)
      << "an empty epoch must not re-gather anything";
  ExpectOracleMatch(pagerank, wcc, applied->graph, nullptr, "empty");
}

TEST(IncrementalEquivalenceTest, DuplicateEdgeInBatchLastWins) {
  const Graph start = testing::MakeStar(8);
  DeltaBatch batch;
  // Same logical edge three times: insert, delete, insert — net insert.
  batch.ops.push_back({DeltaOp::kInsertEdge, 0, 3, 5, 1.0});
  batch.ops.push_back({DeltaOp::kDeleteEdge, 0, 3, 5, 1.0});
  batch.ops.push_back({DeltaOp::kInsertEdge, 0, 5, 3, 1.0});  // canonical dup
  ExpectEpochMatchesOracle(start, batch, "duplicate-edge");
}

TEST(IncrementalEquivalenceTest, DeleteNonexistentIsRecordedNoOp) {
  const Graph start = testing::MakeUndirectedCycle(10);
  DeltaBatch batch;
  batch.ops.push_back({DeltaOp::kDeleteEdge, 0, 2, 7, 1.0});   // absent edge
  batch.ops.push_back({DeltaOp::kDeleteEdge, 0, 500, 1, 1.0});  // absent id
  auto applied = ApplyDeltas(start, batch);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied->stats.missing_deletes, 2);
  EXPECT_EQ(applied->stats.deleted_edges, 0);
  ExpectEpochMatchesOracle(start, batch, "delete-nonexistent");
}

TEST(IncrementalEquivalenceTest, VertexIsolationKeepsVertex) {
  // Deleting a vertex's last edge leaves it isolated: n stays constant,
  // PageRank treats it as dangling, WCC gives it a singleton label.
  const Graph start = testing::MakeGraph(
      Directedness::kUndirected,
      {{0, 1}, {1, 2}, {2, 0}, {3, 0}});
  DeltaBatch batch;
  batch.ops.push_back({DeltaOp::kDeleteEdge, 0, 3, 0, 1.0});
  auto applied = ApplyDeltas(start, batch);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied->graph.num_vertices(), start.num_vertices());
  EXPECT_FALSE(applied->vertex_set_changed);

  IncrementalPageRank pagerank(kIterations, kDamping);
  IncrementalWcc wcc;
  ASSERT_TRUE(pagerank.Initialize(start).ok());
  ASSERT_TRUE(wcc.Initialize(start).ok());
  ASSERT_TRUE(pagerank.Update(*applied).ok());
  ASSERT_TRUE(wcc.Update(*applied).ok());
  ExpectOracleMatch(pagerank, wcc, applied->graph, nullptr, "isolation");
  // Vertex 3 is its own (singleton) component now.
  const VertexIndex isolated = applied->graph.IndexOf(3);
  EXPECT_EQ(wcc.output().int_values[isolated], 3);
}

TEST(IncrementalEquivalenceTest, MintedVerticesTriggerCleanRecompute) {
  const Graph start = testing::MakeUndirectedCycle(8);
  DeltaBatch batch;
  batch.ops.push_back({DeltaOp::kAddVertex, 0, 40, 0, 1.0});
  batch.ops.push_back({DeltaOp::kInsertEdge, 0, 41, 2, 1.0});
  auto applied = ApplyDeltas(start, batch);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(applied->vertex_set_changed);
  EXPECT_EQ(applied->graph.num_vertices(), start.num_vertices() + 2);

  IncrementalPageRank pagerank(kIterations, kDamping);
  IncrementalWcc wcc;
  ASSERT_TRUE(pagerank.Initialize(start).ok());
  ASSERT_TRUE(wcc.Initialize(start).ok());
  ASSERT_TRUE(pagerank.Update(*applied).ok());
  ASSERT_TRUE(wcc.Update(*applied).ok());
  EXPECT_EQ(pagerank.stats().full_recomputes, 1)
      << "n changed, so the 1/n terms force a full recompute";
  EXPECT_EQ(pagerank.stats().epochs, 1);
  ExpectOracleMatch(pagerank, wcc, applied->graph, nullptr, "minted");
}

TEST(IncrementalEquivalenceTest, UpdateBeforeInitializeRejected) {
  const Graph start = testing::MakeUndirectedCycle(4);
  auto applied = ApplyDeltas(start, DeltaBatch{});
  ASSERT_TRUE(applied.ok());
  IncrementalPageRank pagerank(kIterations, kDamping);
  EXPECT_EQ(pagerank.Update(*applied).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ga::mutate
