// Behavioural tests of the platform layer: support matrix, metrics,
// Granula archives, memory crashes, and scaling-model sanity.
#include <gtest/gtest.h>

#include "algo/reference.h"
#include "datagen/graph500.h"
#include "platforms/platform.h"
#include "platforms/spmat.h"
#include "testing/graph_fixtures.h"

namespace ga::platform {
namespace {

Graph TestGraph(int scale = 10, std::int64_t edges = 5000) {
  datagen::Graph500Config config;
  config.scale = scale;
  config.num_edges = edges;
  config.weighted = true;
  config.seed = 3;
  auto graph = datagen::GenerateGraph500(config);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

ExecutionEnvironment RoomyEnv(int machines = 1, int threads = 8) {
  ExecutionEnvironment env;
  env.num_machines = machines;
  env.threads_per_machine = threads;
  env.memory_budget_bytes = 1LL << 30;
  return env;
}

TEST(PlatformRegistryTest, SixPlatformsInTable5Order) {
  auto ids = AllPlatformIds();
  ASSERT_EQ(ids.size(), 6u);
  EXPECT_EQ(ids[0], "bsplite");
  EXPECT_EQ(ids[1], "dataflow");
  EXPECT_EQ(ids[2], "gaslite");
  EXPECT_EQ(ids[3], "spmat");
  EXPECT_EQ(ids[4], "nativekernel");
  EXPECT_EQ(ids[5], "pushpull");
}

TEST(PlatformRegistryTest, UnknownIdRejected) {
  EXPECT_FALSE(CreatePlatform("hadoop").ok());
}

TEST(PlatformSupportTest, PushPullHasNoLcc) {
  auto platform = CreatePlatform("pushpull");
  ASSERT_TRUE(platform.ok());
  EXPECT_FALSE((*platform)->SupportsAlgorithm(Algorithm::kLcc, RoomyEnv()));
  EXPECT_TRUE((*platform)->SupportsAlgorithm(Algorithm::kBfs, RoomyEnv()));
}

TEST(PlatformSupportTest, NativeKernelIsSingleMachine) {
  auto platform = CreatePlatform("nativekernel");
  ASSERT_TRUE(platform.ok());
  EXPECT_FALSE((*platform)->info().distributed);
  Graph graph = TestGraph();
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  auto run = (*platform)->RunJob(graph, Algorithm::kBfs, params,
                                 RoomyEnv(/*machines=*/2));
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnsupported);
}

TEST(PlatformSupportTest, SpmatBackendSelection) {
  // Paper §4.2: SSSP is not supported in the shared-memory backend.
  EXPECT_TRUE(
      SpMatPlatform::UsesDistributedBackend(Algorithm::kSssp, RoomyEnv()));
  EXPECT_FALSE(
      SpMatPlatform::UsesDistributedBackend(Algorithm::kBfs, RoomyEnv()));
  EXPECT_TRUE(SpMatPlatform::UsesDistributedBackend(Algorithm::kBfs,
                                                    RoomyEnv(4)));
}

TEST(PlatformMetricsTest, MetricsArePopulatedAndOrdered) {
  Graph graph = TestGraph();
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  for (auto& platform : CreateAllPlatforms()) {
    auto run = platform->RunJob(graph, Algorithm::kBfs, params, RoomyEnv());
    ASSERT_TRUE(run.ok()) << platform->info().id;
    const RunMetrics& metrics = run->metrics;
    EXPECT_GT(metrics.processing_sim_seconds, 0.0) << platform->info().id;
    EXPECT_GT(metrics.upload_sim_seconds, 0.0);
    // Makespan covers startup + upload + processing + offload + cleanup.
    EXPECT_GT(metrics.makespan_sim_seconds,
              metrics.processing_sim_seconds + metrics.upload_sim_seconds)
        << platform->info().id;
    EXPECT_GT(metrics.supersteps, 0);
    EXPECT_GT(metrics.ledger.compute_ops, 0u);
  }
}

TEST(PlatformMetricsTest, GranulaArchiveHasCanonicalPhases) {
  Graph graph = TestGraph();
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  auto platform = CreatePlatform("bsplite");
  ASSERT_TRUE(platform.ok());
  auto run = (*platform)->RunJob(graph, Algorithm::kBfs, params, RoomyEnv());
  ASSERT_TRUE(run.ok());
  const granula::Operation& root = run->archive.root();
  EXPECT_EQ(root.mission(), granula::kMissionJob);
  for (std::string_view mission :
       {granula::kMissionStartup, granula::kMissionUploadGraph,
        granula::kMissionProcessGraph, granula::kMissionOffloadGraph,
        granula::kMissionCleanup}) {
    EXPECT_NE(root.Find(mission), nullptr) << mission;
  }
  // T_proc as defined by the paper = the ProcessGraph phase duration
  // (up to floating-point accumulation order).
  const granula::Operation* processing =
      root.Find(granula::kMissionProcessGraph);
  EXPECT_NEAR(processing->SimDuration(),
              run->metrics.processing_sim_seconds,
              1e-9 * std::max(1.0, run->metrics.processing_sim_seconds));
  // Supersteps are recorded as nested operations.
  EXPECT_NE(root.Find(granula::kMissionSuperstep), nullptr);
}

TEST(PlatformMemoryTest, TinyBudgetCrashesWithOutOfMemory) {
  Graph graph = TestGraph();
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  ExecutionEnvironment env = RoomyEnv();
  env.memory_budget_bytes = 1024;  // nothing fits
  for (auto& platform : CreateAllPlatforms()) {
    auto run = platform->RunJob(graph, Algorithm::kBfs, params, env);
    ASSERT_FALSE(run.ok()) << platform->info().id;
    EXPECT_EQ(run.status().code(), StatusCode::kOutOfMemory)
        << platform->info().id;
  }
}

TEST(PlatformMemoryTest, LccExhaustsMessageEngines) {
  // A dense-ish graph with a budget that fits the graph but not the
  // neighbourhood-exchange buffers: bsplite/dataflow/spmat must crash,
  // gaslite/nativekernel must complete (paper §4.2).
  datagen::Graph500Config config;
  config.scale = 10;
  config.num_edges = 20000;  // avg degree ~40
  config.seed = 9;
  auto graph = datagen::GenerateGraph500(config);
  ASSERT_TRUE(graph.ok());
  AlgorithmParams params;
  ExecutionEnvironment env = RoomyEnv();
  env.memory_budget_bytes = 3'000'000;

  for (const char* id : {"bsplite", "dataflow", "spmat"}) {
    auto platform = CreatePlatform(id);
    ASSERT_TRUE(platform.ok());
    auto run = (*platform)->RunJob(*graph, Algorithm::kLcc, params, env);
    ASSERT_FALSE(run.ok()) << id << " should run out of memory";
    EXPECT_EQ(run.status().code(), StatusCode::kOutOfMemory) << id;
  }
  for (const char* id : {"gaslite", "nativekernel"}) {
    auto platform = CreatePlatform(id);
    ASSERT_TRUE(platform.ok());
    auto run = (*platform)->RunJob(*graph, Algorithm::kLcc, params, env);
    EXPECT_TRUE(run.ok()) << id << ": " << run.status().ToString();
  }
}

TEST(PlatformScalingTest, MoreThreadsNeverSlower) {
  Graph graph = TestGraph(12, 30000);
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  for (auto& platform : CreateAllPlatforms()) {
    double previous = 1e100;
    for (int threads : {1, 4, 16}) {
      ExecutionEnvironment env = RoomyEnv(1, threads);
      auto run =
          platform->RunJob(graph, Algorithm::kPageRank, params, env);
      ASSERT_TRUE(run.ok()) << platform->info().id;
      EXPECT_LE(run->metrics.processing_sim_seconds, previous * 1.0001)
          << platform->info().id << " at " << threads << " threads";
      previous = run->metrics.processing_sim_seconds;
    }
  }
}

TEST(PlatformScalingTest, VerticalSpeedupCapsDifferAcrossPlatforms) {
  // pushpull must scale best and dataflow worst (Table 9's ordering).
  // Fixed superstep overheads matter on small graphs, so use a graph big
  // enough for compute to dominate.
  Graph graph = TestGraph(15, 200000);
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  auto speedup = [&](const char* id) {
    auto platform = CreatePlatform(id);
    EXPECT_TRUE(platform.ok());
    auto one = (*platform)->RunJob(graph, Algorithm::kPageRank, params,
                                   RoomyEnv(1, 1));
    auto many = (*platform)->RunJob(graph, Algorithm::kPageRank, params,
                                    RoomyEnv(1, 32));
    EXPECT_TRUE(one.ok());
    EXPECT_TRUE(many.ok());
    return one->metrics.processing_sim_seconds /
           many->metrics.processing_sim_seconds;
  };
  const double pushpull = speedup("pushpull");
  const double dataflow = speedup("dataflow");
  const double gaslite = speedup("gaslite");
  EXPECT_GT(pushpull, 11.0);
  EXPECT_LT(dataflow, 6.0);
  EXPECT_GT(pushpull, gaslite);
  EXPECT_GT(gaslite, dataflow);
}

TEST(PlatformScalingTest, SinglePlatformDeterministicAcrossRuns) {
  Graph graph = TestGraph();
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  auto platform = CreatePlatform("gaslite");
  ASSERT_TRUE(platform.ok());
  auto a = (*platform)->RunJob(graph, Algorithm::kBfs, params, RoomyEnv());
  auto b = (*platform)->RunJob(graph, Algorithm::kBfs, params, RoomyEnv());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->metrics.processing_sim_seconds,
                   b->metrics.processing_sim_seconds);
  EXPECT_DOUBLE_EQ(a->metrics.makespan_sim_seconds,
                   b->metrics.makespan_sim_seconds);
}

TEST(PlatformValidationTest, SsspWithoutWeightsFails) {
  datagen::Graph500Config config;
  config.scale = 8;
  config.num_edges = 1000;
  config.weighted = false;
  auto graph = datagen::GenerateGraph500(config);
  ASSERT_TRUE(graph.ok());
  AlgorithmParams params;
  params.source_vertex = graph->ExternalId(0);
  auto platform = CreatePlatform("nativekernel");
  ASSERT_TRUE(platform.ok());
  auto run =
      (*platform)->RunJob(*graph, Algorithm::kSssp, params, RoomyEnv());
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlatformValidationTest, BadSourceVertexRejected) {
  Graph graph = TestGraph();
  AlgorithmParams params;
  params.source_vertex = -12345;
  for (auto& platform : CreateAllPlatforms()) {
    auto run = platform->RunJob(graph, Algorithm::kBfs, params, RoomyEnv());
    EXPECT_FALSE(run.ok()) << platform->info().id;
  }
}

}  // namespace
}  // namespace ga::platform
