// Cancellation/deadline behaviour at the platform job boundary: a
// tripped CancelToken must surface as a clean kCancelled /
// kDeadlineExceeded Status from RunJob on every platform — no partial
// output, no exception escaping — and a platform must stay fully usable
// for the next (clean) job, which is what lets the serve daemon reuse
// one executor across cancelled and healthy requests.
#include <gtest/gtest.h>

#include <chrono>

#include "core/exec/thread_pool.h"
#include "datagen/graph500.h"
#include "platforms/platform.h"
#include "testing/graph_fixtures.h"

namespace ga::platform {
namespace {

Graph TestGraph() {
  datagen::Graph500Config config;
  config.scale = 10;
  config.num_edges = 5000;
  config.weighted = true;
  config.seed = 3;
  auto graph = datagen::GenerateGraph500(config);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

ExecutionEnvironment RoomyEnv(exec::ThreadPool* pool) {
  ExecutionEnvironment env;
  env.num_machines = 1;
  env.threads_per_machine = 8;
  env.memory_budget_bytes = 1LL << 30;
  env.host_pool = pool;
  return env;
}

TEST(PlatformCancelTest, PreCancelledTokenFailsJobWithCancelled) {
  const Graph graph = TestGraph();
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  exec::ThreadPool pool(2);
  for (const std::string& id : AllPlatformIds()) {
    auto platform = CreatePlatform(id);
    ASSERT_TRUE(platform.ok());
    exec::CancelToken token;
    token.Cancel("client disconnected");
    ExecutionEnvironment env = RoomyEnv(&pool);
    env.cancel = &token;
    auto run = (*platform)->RunJob(graph, Algorithm::kBfs, params, env);
    ASSERT_FALSE(run.ok()) << id;
    EXPECT_EQ(run.status().code(), StatusCode::kCancelled) << id;
    EXPECT_NE(run.status().message().find("client disconnected"),
              std::string::npos)
        << id << ": " << run.status().ToString();
    // The platform is not poisoned: the same instance completes a clean
    // job afterwards.
    ExecutionEnvironment clean = RoomyEnv(&pool);
    auto rerun = (*platform)->RunJob(graph, Algorithm::kBfs, params, clean);
    EXPECT_TRUE(rerun.ok()) << id << ": " << rerun.status().ToString();
  }
}

TEST(PlatformCancelTest, ExpiredDeadlineFailsJobWithDeadlineExceeded) {
  const Graph graph = TestGraph();
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  exec::ThreadPool pool(2);
  for (const std::string& id : AllPlatformIds()) {
    auto platform = CreatePlatform(id);
    ASSERT_TRUE(platform.ok());
    exec::CancelToken token;
    token.SetDeadlineAfter(std::chrono::nanoseconds(-1));
    ExecutionEnvironment env = RoomyEnv(&pool);
    env.cancel = &token;
    auto run = (*platform)->RunJob(graph, Algorithm::kPageRank, params, env);
    ASSERT_FALSE(run.ok()) << id;
    EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded) << id;
  }
}

TEST(PlatformCancelTest, UntrippedTokenDoesNotPerturbResults) {
  const Graph graph = TestGraph();
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  exec::ThreadPool pool(2);
  auto platform = CreatePlatform("bsplite");
  ASSERT_TRUE(platform.ok());
  ExecutionEnvironment bare = RoomyEnv(&pool);
  auto baseline = (*platform)->RunJob(graph, Algorithm::kBfs, params, bare);
  ASSERT_TRUE(baseline.ok());
  exec::CancelToken token;  // armed with nothing
  ExecutionEnvironment tokened = RoomyEnv(&pool);
  tokened.cancel = &token;
  auto run = (*platform)->RunJob(graph, Algorithm::kBfs, params, tokened);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->output.int_values, baseline->output.int_values);
  EXPECT_EQ(run->metrics.supersteps, baseline->metrics.supersteps);
}

}  // namespace
}  // namespace ga::platform
