// The platform-correctness matrix: every platform analogue must produce
// output equivalent to the reference implementation for every algorithm on
// a battery of graphs — the paper's definition of platform correctness
// (Section 2.2.3). Parameterised over (platform, algorithm, graph).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "algo/output.h"
#include "algo/reference.h"
#include "datagen/graph500.h"
#include "datagen/socialnet.h"
#include "platforms/platform.h"
#include "testing/graph_fixtures.h"

namespace ga::platform {
namespace {

struct GraphCase {
  std::string name;
  Directedness directedness;
  bool weighted;
};

// A battery of graph shapes: structured fixtures plus random generated
// graphs of both directednesses.
const GraphCase kGraphCases[] = {
    {"clique", Directedness::kUndirected, true},
    {"star", Directedness::kUndirected, true},
    {"two_components", Directedness::kUndirected, true},
    {"rmat_undirected", Directedness::kUndirected, true},
    {"rmat_directed", Directedness::kDirected, true},
    {"social", Directedness::kUndirected, true},
};

Graph BuildCase(const std::string& name) {
  if (name == "clique") {
    // Weighted clique with deterministic weights.
    GraphBuilder builder(Directedness::kUndirected, true);
    for (int i = 0; i < 12; ++i) {
      for (int j = i + 1; j < 12; ++j) {
        builder.AddEdge(i, j, 0.25 + 0.5 * ((i * 13 + j) % 7));
      }
    }
    auto graph = std::move(builder).Build();
    EXPECT_TRUE(graph.ok());
    return std::move(graph).value();
  }
  if (name == "star") {
    GraphBuilder builder(Directedness::kUndirected, true);
    for (int i = 1; i < 40; ++i) builder.AddEdge(0, i, 1.0 + i % 3);
    builder.AddVertex(99);  // isolated vertex
    auto graph = std::move(builder).Build();
    EXPECT_TRUE(graph.ok());
    return std::move(graph).value();
  }
  if (name == "two_components") {
    GraphBuilder builder(Directedness::kUndirected, true);
    for (int i = 0; i < 10; ++i) builder.AddEdge(i, (i + 1) % 11, 0.5);
    for (int i = 100; i < 110; ++i) builder.AddEdge(i, i + 1, 2.0);
    auto graph = std::move(builder).Build();
    EXPECT_TRUE(graph.ok());
    return std::move(graph).value();
  }
  if (name == "rmat_undirected" || name == "rmat_directed") {
    datagen::Graph500Config config;
    config.scale = 9;
    config.num_edges = 2500;
    config.weighted = true;
    config.seed = 77;
    config.directedness = name == "rmat_directed"
                              ? Directedness::kDirected
                              : Directedness::kUndirected;
    auto graph = datagen::GenerateGraph500(config);
    EXPECT_TRUE(graph.ok());
    return std::move(graph).value();
  }
  // social
  datagen::SocialNetConfig config;
  config.num_persons = 600;
  config.avg_degree = 10;
  config.target_clustering = 0.2;
  config.weighted = true;
  config.seed = 5;
  auto network = datagen::GenerateSocialNetwork(config);
  EXPECT_TRUE(network.ok());
  return std::move(network->graph);
}

using MatrixParam = std::tuple<std::string, Algorithm, std::string>;

class PlatformCorrectnessTest
    : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(PlatformCorrectnessTest, MatchesReferenceOutput) {
  const auto& [platform_id, algorithm, graph_name] = GetParam();
  auto platform = CreatePlatform(platform_id);
  ASSERT_TRUE(platform.ok());

  ExecutionEnvironment env;
  env.num_machines = 1;
  env.threads_per_machine = 8;
  env.memory_budget_bytes = 1LL << 30;  // roomy: correctness, not stress

  if (!(*platform)->SupportsAlgorithm(algorithm, env)) {
    GTEST_SKIP() << platform_id << " does not support "
                 << AlgorithmName(algorithm);
  }

  Graph graph = BuildCase(graph_name);
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  params.pagerank_iterations = 15;
  params.cdlp_iterations = 6;

  auto reference = reference::Run(graph, algorithm, params);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  auto run = (*platform)->RunJob(graph, algorithm, params, env);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  Status valid = ValidateOutput(graph, *reference, run->output);
  EXPECT_TRUE(valid.ok()) << platform_id << "/" << AlgorithmName(algorithm)
                          << " on " << graph_name << ": "
                          << valid.ToString();
}

TEST_P(PlatformCorrectnessTest, DistributedRunMatchesReference) {
  const auto& [platform_id, algorithm, graph_name] = GetParam();
  auto platform = CreatePlatform(platform_id);
  ASSERT_TRUE(platform.ok());

  ExecutionEnvironment env;
  env.num_machines = 4;
  env.threads_per_machine = 4;
  env.memory_budget_bytes = 1LL << 30;

  if (!(*platform)->info().distributed) {
    GTEST_SKIP() << platform_id << " is single-machine only";
  }
  if (!(*platform)->SupportsAlgorithm(algorithm, env)) {
    GTEST_SKIP();
  }

  Graph graph = BuildCase(graph_name);
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  params.pagerank_iterations = 15;
  params.cdlp_iterations = 6;

  auto reference = reference::Run(graph, algorithm, params);
  ASSERT_TRUE(reference.ok());

  auto run = (*platform)->RunJob(graph, algorithm, params, env);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(ValidateOutput(graph, *reference, run->output).ok())
      << platform_id << "/" << AlgorithmName(algorithm) << " on "
      << graph_name << " with 4 machines";
}

std::string ParamName(
    const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto& [platform_id, algorithm, graph_name] = info.param;
  return platform_id + "_" + std::string(AlgorithmName(algorithm)) + "_" +
         graph_name;
}

std::vector<std::string> GraphCaseNames() {
  std::vector<std::string> names;
  for (const GraphCase& c : kGraphCases) names.push_back(c.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PlatformCorrectnessTest,
    ::testing::Combine(::testing::ValuesIn(AllPlatformIds()),
                       ::testing::ValuesIn(std::vector<Algorithm>(
                           std::begin(kAllAlgorithms),
                           std::end(kAllAlgorithms))),
                       ::testing::ValuesIn(GraphCaseNames())),
    ParamName);

}  // namespace
}  // namespace ga::platform
