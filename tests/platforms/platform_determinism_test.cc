// The exec determinism contract at the platform layer: every engine's
// AlgorithmOutput AND its simulated accounting (WorkLedger, simulated
// seconds, supersteps) must be bit-identical whether the real work runs
// on 1, 2 or 8 host threads. Host parallelism is a wall-time knob only.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "algo/reference.h"
#include "core/exec/thread_pool.h"
#include "datagen/graph500.h"
#include "platforms/platform.h"
#include "testing/graph_fixtures.h"

namespace ga::platform {
namespace {

Graph TestGraph(int scale = 10, std::int64_t edges = 5000) {
  datagen::Graph500Config config;
  config.scale = scale;
  config.num_edges = edges;
  config.weighted = true;
  config.seed = 3;
  auto graph = datagen::GenerateGraph500(config);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

void ExpectBitIdentical(const RunResult& expected, const RunResult& actual,
                        const std::string& what) {
  // Outputs: exact, including every bit of the doubles.
  ASSERT_EQ(expected.output.int_values.size(),
            actual.output.int_values.size())
      << what;
  EXPECT_EQ(expected.output.int_values, actual.output.int_values) << what;
  ASSERT_EQ(expected.output.double_values.size(),
            actual.output.double_values.size())
      << what;
  for (std::size_t i = 0; i < expected.output.double_values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&expected.output.double_values[i],
                          &actual.output.double_values[i], sizeof(double)),
              0)
        << what << " double_values[" << i << "]";
  }
  // Simulated accounting: the WorkLedger and the simulated clock.
  EXPECT_EQ(expected.metrics.ledger.compute_ops,
            actual.metrics.ledger.compute_ops)
      << what;
  EXPECT_EQ(expected.metrics.ledger.messages, actual.metrics.ledger.messages)
      << what;
  EXPECT_EQ(expected.metrics.ledger.remote_bytes,
            actual.metrics.ledger.remote_bytes)
      << what;
  EXPECT_EQ(expected.metrics.ledger.allocations,
            actual.metrics.ledger.allocations)
      << what;
  EXPECT_EQ(expected.metrics.ledger.rows_materialized,
            actual.metrics.ledger.rows_materialized)
      << what;
  EXPECT_EQ(expected.metrics.supersteps, actual.metrics.supersteps) << what;
  EXPECT_EQ(expected.metrics.processing_sim_seconds,
            actual.metrics.processing_sim_seconds)
      << what;
  EXPECT_EQ(expected.metrics.makespan_sim_seconds,
            actual.metrics.makespan_sim_seconds)
      << what;
}

TEST(PlatformDeterminismTest, OutputsAndLedgersIdenticalAcrossHostThreads) {
  Graph graph = TestGraph();
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);

  for (auto& platform : CreateAllPlatforms()) {
    for (Algorithm algorithm : kAllAlgorithms) {
      ExecutionEnvironment env;
      env.num_machines = 2;
      env.threads_per_machine = 8;
      env.memory_budget_bytes = 1LL << 30;
      if (!platform->SupportsAlgorithm(algorithm, env)) continue;
      const std::string what =
          platform->info().id + "/" + std::string(AlgorithmName(algorithm));

      env.host_pool = nullptr;  // serial baseline
      auto baseline = platform->RunJob(graph, algorithm, params, env);
      ASSERT_TRUE(baseline.ok()) << what << ": "
                                 << baseline.status().ToString();

      for (int host_threads : {1, 2, 8}) {
        exec::ThreadPool pool(host_threads);
        env.host_pool = &pool;
        auto run = platform->RunJob(graph, algorithm, params, env);
        ASSERT_TRUE(run.ok()) << what << " @" << host_threads << ": "
                              << run.status().ToString();
        ExpectBitIdentical(*baseline, *run,
                           what + " @" + std::to_string(host_threads) +
                               " host threads");
      }
    }
  }
}

TEST(PlatformDeterminismTest, ReferencesIdenticalAcrossHostThreads) {
  Graph graph = TestGraph(11, 9000);
  const VertexId source = graph.ExternalId(0);
  auto bfs_serial = reference::Bfs(graph, source);
  auto pr_serial = reference::PageRank(graph, 15, 0.85);
  auto wcc_serial = reference::Wcc(graph);
  ASSERT_TRUE(bfs_serial.ok());
  ASSERT_TRUE(pr_serial.ok());
  ASSERT_TRUE(wcc_serial.ok());
  for (int host_threads : {2, 8}) {
    exec::ThreadPool pool(host_threads);
    auto bfs = reference::Bfs(graph, source, &pool);
    auto pr = reference::PageRank(graph, 15, 0.85, &pool);
    auto wcc = reference::Wcc(graph, &pool);
    ASSERT_TRUE(bfs.ok());
    ASSERT_TRUE(pr.ok());
    ASSERT_TRUE(wcc.ok());
    EXPECT_EQ(bfs->int_values, bfs_serial->int_values);
    EXPECT_EQ(wcc->int_values, wcc_serial->int_values);
    ASSERT_EQ(pr->double_values.size(), pr_serial->double_values.size());
    for (std::size_t i = 0; i < pr->double_values.size(); ++i) {
      EXPECT_EQ(std::memcmp(&pr->double_values[i],
                            &pr_serial->double_values[i], sizeof(double)),
                0)
          << "pr[" << i << "] @" << host_threads;
    }
  }
}

TEST(PlatformDeterminismTest, GraphBuildIdenticalAcrossHostThreads) {
  // Duplicate edges with distinct weights: the dedup survivor must not
  // depend on host parallelism.
  std::vector<testing::WeightedEdge> edges;
  std::uint64_t state = 99;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const VertexId s = static_cast<VertexId>(state % 500);
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const VertexId t = static_cast<VertexId>(state % 500);
    if (s == t) continue;
    edges.push_back({s, t, static_cast<double>(i)});
  }
  auto build_with = [&](exec::ThreadPool* pool) {
    GraphBuilder builder(Directedness::kDirected, /*weighted=*/true);
    for (const auto& edge : edges) {
      builder.AddEdge(edge.source, edge.target, edge.weight);
    }
    auto graph = std::move(builder).Build(pool);
    EXPECT_TRUE(graph.ok());
    return std::move(graph).value();
  };
  const Graph serial = build_with(nullptr);
  for (int host_threads : {2, 8}) {
    exec::ThreadPool pool(host_threads);
    const Graph parallel = build_with(&pool);
    ASSERT_EQ(parallel.num_vertices(), serial.num_vertices());
    ASSERT_EQ(parallel.num_edges(), serial.num_edges());
    for (VertexIndex v = 0; v < serial.num_vertices(); ++v) {
      ASSERT_EQ(parallel.ExternalId(v), serial.ExternalId(v));
    }
    for (EdgeIndex e = 0; e < serial.num_edges(); ++e) {
      ASSERT_EQ(parallel.edges()[e].source, serial.edges()[e].source);
      ASSERT_EQ(parallel.edges()[e].target, serial.edges()[e].target);
      ASSERT_EQ(parallel.edges()[e].weight, serial.edges()[e].weight)
          << "dedup survivor differs at edge " << e;
    }
    const auto serial_targets = serial.out_targets();
    const auto parallel_targets = parallel.out_targets();
    ASSERT_EQ(parallel_targets.size(), serial_targets.size());
    for (std::size_t i = 0; i < serial_targets.size(); ++i) {
      ASSERT_EQ(parallel_targets[i], serial_targets[i]);
    }
  }
}

}  // namespace
}  // namespace ga::platform
