// Edge-case behaviour of the platform layer: degenerate graphs, machine
// sweeps, metric consistency between clocks and environments.
#include <gtest/gtest.h>

#include "algo/reference.h"
#include "datagen/graph500.h"
#include "platforms/platform.h"
#include "platforms/worker_map.h"
#include "testing/graph_fixtures.h"

namespace ga::platform {
namespace {

ExecutionEnvironment RoomyEnv(int machines = 1, int threads = 4) {
  ExecutionEnvironment env;
  env.num_machines = machines;
  env.threads_per_machine = threads;
  env.memory_budget_bytes = 1LL << 30;
  return env;
}

TEST(WorkerMapTest, MachinesAndThreadsInRange) {
  Graph graph = testing::MakeClique(50);
  WorkerMap map(graph, 4, 8);
  for (VertexIndex v = 0; v < graph.num_vertices(); ++v) {
    EXPECT_GE(map.machine_of(v), 0);
    EXPECT_LT(map.machine_of(v), 4);
    EXPECT_GE(map.thread_of(v), 0);
    EXPECT_LT(map.thread_of(v), 8);
    EXPECT_EQ(map.worker_of(v), map.machine_of(v) * 8 + map.thread_of(v));
  }
}

TEST(PlatformEdgeCaseTest, TwoVertexGraphAllAlgorithms) {
  Graph graph = testing::MakeGraph(Directedness::kUndirected, {{0, 1, 2.0}},
                                   {}, /*weighted=*/true);
  AlgorithmParams params;
  params.source_vertex = 0;
  for (auto& platform : CreateAllPlatforms()) {
    for (Algorithm algorithm : kAllAlgorithms) {
      if (!platform->SupportsAlgorithm(algorithm, RoomyEnv())) continue;
      auto reference = reference::Run(graph, algorithm, params);
      ASSERT_TRUE(reference.ok());
      auto run = platform->RunJob(graph, algorithm, params, RoomyEnv());
      ASSERT_TRUE(run.ok())
          << platform->info().id << "/" << AlgorithmName(algorithm)
          << ": " << run.status().ToString();
      EXPECT_TRUE(ValidateOutput(graph, *reference, run->output).ok())
          << platform->info().id << "/" << AlgorithmName(algorithm);
    }
  }
}

TEST(PlatformEdgeCaseTest, DisconnectedSourceStillTerminates) {
  // Source in a 2-vertex islet; the rest of the graph is unreachable.
  Graph graph = testing::MakeGraph(
      Directedness::kDirected,
      {{100, 101, 1.0}, {0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}}, {},
      /*weighted=*/true);
  AlgorithmParams params;
  params.source_vertex = 100;
  for (auto& platform : CreateAllPlatforms()) {
    for (Algorithm algorithm : {Algorithm::kBfs, Algorithm::kSssp}) {
      auto run = platform->RunJob(graph, algorithm, params, RoomyEnv());
      ASSERT_TRUE(run.ok()) << platform->info().id;
      auto reference = reference::Run(graph, algorithm, params);
      ASSERT_TRUE(reference.ok());
      EXPECT_TRUE(ValidateOutput(graph, *reference, run->output).ok())
          << platform->info().id << "/" << AlgorithmName(algorithm);
    }
  }
}

TEST(PlatformEdgeCaseTest, MachineCountSweepPreservesOutput) {
  // Distribution must never change results, only timing (determinism of
  // the benchmark across deployments).
  datagen::Graph500Config config;
  config.scale = 9;
  config.num_edges = 3000;
  config.weighted = true;
  config.seed = 21;
  auto graph = datagen::GenerateGraph500(config);
  ASSERT_TRUE(graph.ok());
  AlgorithmParams params;
  params.source_vertex = graph->ExternalId(0);
  for (const char* id : {"bsplite", "dataflow", "gaslite", "spmat",
                         "pushpull"}) {
    auto platform = CreatePlatform(id);
    ASSERT_TRUE(platform.ok());
    auto reference = reference::Run(*graph, Algorithm::kWcc, params);
    ASSERT_TRUE(reference.ok());
    for (int machines : {1, 2, 3, 8}) {
      auto run = (*platform)->RunJob(*graph, Algorithm::kWcc, params,
                                     RoomyEnv(machines));
      ASSERT_TRUE(run.ok()) << id << "@" << machines;
      EXPECT_TRUE(ValidateOutput(*graph, *reference, run->output).ok())
          << id << "@" << machines;
    }
  }
}

TEST(PlatformEdgeCaseTest, MoreMachinesNeverFreeForMessageEngines) {
  // Adding machines to a message-passing engine on a small graph must
  // add communication cost (no free lunch), while the job still succeeds.
  Graph graph = testing::MakeClique(60);
  AlgorithmParams params;
  params.source_vertex = 0;
  auto platform = CreatePlatform("bsplite");
  ASSERT_TRUE(platform.ok());
  auto one = (*platform)->RunJob(graph, Algorithm::kPageRank, params,
                                 RoomyEnv(1));
  auto four = (*platform)->RunJob(graph, Algorithm::kPageRank, params,
                                  RoomyEnv(4));
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(four.ok());
  EXPECT_GT(four->metrics.ledger.remote_bytes, 0u);
  EXPECT_EQ(one->metrics.ledger.remote_bytes, 0u);
}

TEST(PlatformEdgeCaseTest, OverheadScaleScalesFixedCosts) {
  Graph graph = testing::MakeClique(20);
  AlgorithmParams params;
  params.source_vertex = 0;
  auto platform = CreatePlatform("pushpull");
  ASSERT_TRUE(platform.ok());
  ExecutionEnvironment coarse = RoomyEnv();
  coarse.overhead_scale = 1.0;  // paper-scale overheads in sim seconds
  ExecutionEnvironment fine = RoomyEnv();
  fine.overhead_scale = 1.0 / 1024.0;
  auto slow = (*platform)->RunJob(graph, Algorithm::kBfs, params, coarse);
  auto fast = (*platform)->RunJob(graph, Algorithm::kBfs, params, fine);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  // Startup alone differs by ~1024x on a tiny graph.
  EXPECT_GT(slow->metrics.makespan_sim_seconds,
            100.0 * fast->metrics.makespan_sim_seconds);
}

TEST(PlatformEdgeCaseTest, WallClockIsMeasured) {
  Graph graph = testing::MakeClique(40);
  AlgorithmParams params;
  params.source_vertex = 0;
  auto platform = CreatePlatform("nativekernel");
  ASSERT_TRUE(platform.ok());
  auto run =
      (*platform)->RunJob(graph, Algorithm::kPageRank, params, RoomyEnv());
  ASSERT_TRUE(run.ok());
  EXPECT_GE(run->metrics.wall_seconds, 0.0);
  EXPECT_LT(run->metrics.wall_seconds, 10.0);  // host time, not simulated
}

TEST(PlatformEdgeCaseTest, LedgerCountsRealWork) {
  Graph graph = testing::MakeClique(30);  // 435 edges, 870 entries
  AlgorithmParams params;
  params.source_vertex = 0;
  for (auto& platform : CreateAllPlatforms()) {
    auto run =
        platform->RunJob(graph, Algorithm::kPageRank, params, RoomyEnv());
    ASSERT_TRUE(run.ok()) << platform->info().id;
    // 15 PR iterations over 870 adjacency entries: every engine must
    // charge at least that much raw work.
    EXPECT_GT(run->metrics.ledger.compute_ops, 870u)
        << platform->info().id;
  }
}

}  // namespace
}  // namespace ga::platform
