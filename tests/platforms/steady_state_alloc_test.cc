// Steady-state allocation audit for the flat data-path overhaul
// (DESIGN.md §8): once the first supersteps have warmed every arena,
// pool and slot buffer to its high-water capacity, additional supersteps
// of bsplite PageRank and of every engine's CDLP must perform ZERO heap
// allocations.
//
// Verified with a counting global operator new: the same kernel is run
// through Platform::ExecuteKernel (no Granula tree, no memory accountant
// — the raw data path) at k and k + d iterations; since both runs share
// an identical warm-up prefix, any difference in total allocation count
// is attributable to the d extra steady-state supersteps. The contract
// says that difference is exactly zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "algo/params.h"
#include "core/exec/alloc_stats.h"
#include "core/graph.h"
#include "core/rng.h"
#include "datagen/graph500.h"
#include "mutate/delta.h"
#include "mutate/incremental.h"
#include "platforms/platform.h"
#include "sysmodel/cluster.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ga::platform {
namespace {

const Graph& TestGraph() {
  static const Graph graph = [] {
    datagen::Graph500Config config;
    config.scale = 10;
    config.num_edges = 6000;
    config.directedness = Directedness::kDirected;
    config.seed = 11;
    auto built = datagen::GenerateGraph500(config);
    if (!built.ok()) std::abort();
    return std::move(built).value();
  }();
  return graph;
}

/// One kernel run's allocation audit: the interposed operator-new count
/// plus the per-site data-path growth report (AllocSite attribution —
/// which arena/pool grew and by how many bytes) for failure diagnosis.
struct RunAudit {
  std::uint64_t heap_allocations = 0;
  std::string datapath_growth;
};

/// Audits one kernel run with `iterations` PR/CDLP iterations,
/// single-threaded, raw data path.
RunAudit AllocationsForRun(const std::string& platform_id,
                           Algorithm algorithm, int iterations) {
  const Graph& graph = TestGraph();
  auto platform = CreatePlatform(platform_id);
  if (!platform.ok()) std::abort();
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  params.pagerank_iterations = iterations;
  params.cdlp_iterations = iterations;
  ExecutionEnvironment env;
  env.host_pool = nullptr;
  const CostProfile& profile = platform.value()->profile();
  sysmodel::ClusterModel cluster(MakeClusterConfig(env, profile));
  JobContext ctx(cluster, /*memory=*/nullptr, profile,
                 /*processing_op=*/nullptr, env);

  const exec::AllocSnapshot sites_before = exec::TakeAllocSnapshot();
  const std::uint64_t before = g_allocations.load();
  auto output = platform.value()->ExecuteKernel(ctx, graph, algorithm,
                                                params);
  const std::uint64_t after = g_allocations.load();
  if (!output.ok()) std::abort();
  return {after - before,
          exec::FormatAllocDelta(sites_before, exec::TakeAllocSnapshot())};
}

void ExpectZeroSteadyStateAllocations(const std::string& platform_id,
                                      Algorithm algorithm) {
  // 4 iterations warm every buffer past its high-water mark; the 4 extra
  // iterations of the second run must then allocate nothing.
  const RunAudit short_run = AllocationsForRun(platform_id, algorithm, 4);
  const RunAudit long_run = AllocationsForRun(platform_id, algorithm, 8);
  // Guard against a dead counter: warm-up (arena layout, outputs,
  // deployment) must be visible to the interposed operator new.
  ASSERT_GT(short_run.heap_allocations, 0u);
  EXPECT_EQ(long_run.heap_allocations, short_run.heap_allocations)
      << platform_id << " allocated "
      << (long_run.heap_allocations - short_run.heap_allocations) / 4.0
      << " times per steady-state superstep; data-path growth in the "
      << "longer run: "
      << (long_run.datapath_growth.empty() ? "none tracked"
                                           : long_run.datapath_growth);
}

TEST(SteadyStateAllocTest, BspLitePageRank) {
  ExpectZeroSteadyStateAllocations("bsplite", Algorithm::kPageRank);
}

TEST(SteadyStateAllocTest, BspLiteCdlp) {
  ExpectZeroSteadyStateAllocations("bsplite", Algorithm::kCdlp);
}

TEST(SteadyStateAllocTest, DataflowCdlp) {
  ExpectZeroSteadyStateAllocations("dataflow", Algorithm::kCdlp);
}

TEST(SteadyStateAllocTest, GasLiteCdlp) {
  ExpectZeroSteadyStateAllocations("gaslite", Algorithm::kCdlp);
}

TEST(SteadyStateAllocTest, SpMatCdlp) {
  ExpectZeroSteadyStateAllocations("spmat", Algorithm::kCdlp);
}

TEST(SteadyStateAllocTest, NativeKernelCdlp) {
  ExpectZeroSteadyStateAllocations("nativekernel", Algorithm::kCdlp);
}

TEST(SteadyStateAllocTest, PushPullCdlp) {
  ExpectZeroSteadyStateAllocations("pushpull", Algorithm::kCdlp);
}

// --- Frontier engines (BFS / WCC) ------------------------------------------
//
// BFS and WCC terminate on their own, so the iteration-count probe above
// does not apply. Instead, two runs are arranged to differ ONLY in how
// many supersteps they take — same graph (or same topology), identical
// frontier high-water profile — and their total allocation counts must be
// EQUAL: with the hybrid frontier every per-superstep buffer is reused at
// its high-water capacity, so extra supersteps contribute zero heap
// allocations.

/// Undirected path 0-1-...-n-1 with external ids permuted by `id`.
template <typename IdFn>
Graph PathGraph(VertexIndex n, IdFn&& id) {
  GraphBuilder builder(Directedness::kUndirected);
  for (VertexIndex v = 0; v < n; ++v) {
    builder.AddVertex(id(v));
  }
  for (VertexIndex v = 0; v + 1 < n; ++v) {
    builder.AddEdge(id(v), id(v + 1));
  }
  auto built = std::move(builder).Build();
  if (!built.ok()) std::abort();
  return std::move(built).value();
}

RunAudit AllocationsForGraphRun(const Graph& graph,
                                const std::string& platform_id,
                                Algorithm algorithm, VertexId source) {
  auto platform = CreatePlatform(platform_id);
  if (!platform.ok()) std::abort();
  AlgorithmParams params;
  params.source_vertex = source;
  ExecutionEnvironment env;
  env.host_pool = nullptr;
  const CostProfile& profile = platform.value()->profile();
  sysmodel::ClusterModel cluster(MakeClusterConfig(env, profile));
  JobContext ctx(cluster, /*memory=*/nullptr, profile,
                 /*processing_op=*/nullptr, env);
  const exec::AllocSnapshot sites_before = exec::TakeAllocSnapshot();
  const std::uint64_t before = g_allocations.load();
  auto output =
      platform.value()->ExecuteKernel(ctx, graph, algorithm, params);
  const std::uint64_t after = g_allocations.load();
  if (!output.ok()) std::abort();
  return {after - before,
          exec::FormatAllocDelta(sites_before, exec::TakeAllocSnapshot())};
}

/// BFS from two interior roots of the same path: identical frontier
/// profile (width <= 2 throughout), but max(k, n-1-k) supersteps — 1.5x
/// more for the off-centre root. Equal totals == zero per-superstep
/// allocations. Both roots share their exec-slice alignment (multiples
/// of the 64-vertex slot grain), so per-slot staging high-water marks —
/// which depend on which slices the two BFS waves traverse together —
/// are identical too.
void ExpectSuperstepInvariantBfsAllocations(const std::string& platform_id) {
  const VertexIndex n = 256;
  const Graph graph = PathGraph(n, [](VertexIndex v) { return v; });
  const RunAudit short_run =
      AllocationsForGraphRun(graph, platform_id, Algorithm::kBfs, n / 2);
  const RunAudit long_run =
      AllocationsForGraphRun(graph, platform_id, Algorithm::kBfs, n / 4);
  ASSERT_GT(short_run.heap_allocations, 0u);
  EXPECT_EQ(long_run.heap_allocations, short_run.heap_allocations)
      << platform_id << " BFS allocations scale with superstep count; "
      << "data-path growth in the longer run: "
      << (long_run.datapath_growth.empty() ? "none tracked"
                                           : long_run.datapath_growth);
}

/// WCC on two labelings of the same path topology: the component minimum
/// sits at one end vs in the middle, so convergence takes ~n vs ~n/2
/// label-propagation rounds over an identical degree structure.
void ExpectSuperstepInvariantWccAllocations(const std::string& platform_id) {
  const VertexIndex n = 256;
  const Graph end_min = PathGraph(n, [](VertexIndex v) { return v; });
  const Graph middle_min = PathGraph(n, [n](VertexIndex v) {
    // Bijection putting id 0 at the path's midpoint, ids growing outward.
    const VertexIndex m = n / 2;
    return v >= m ? 2 * (v - m) : 2 * (m - v) - 1;
  });
  const RunAudit long_run =
      AllocationsForGraphRun(end_min, platform_id, Algorithm::kWcc, 0);
  const RunAudit short_run =
      AllocationsForGraphRun(middle_min, platform_id, Algorithm::kWcc, 0);
  ASSERT_GT(short_run.heap_allocations, 0u);
  EXPECT_EQ(long_run.heap_allocations, short_run.heap_allocations)
      << platform_id << " WCC allocations scale with superstep count; "
      << "data-path growth in the longer run: "
      << (long_run.datapath_growth.empty() ? "none tracked"
                                           : long_run.datapath_growth);
}

TEST(SteadyStateAllocTest, PushPullBfsFrontier) {
  ExpectSuperstepInvariantBfsAllocations("pushpull");
}

TEST(SteadyStateAllocTest, SpMatBfsFrontier) {
  ExpectSuperstepInvariantBfsAllocations("spmat");
}

TEST(SteadyStateAllocTest, GasLiteBfsFrontier) {
  ExpectSuperstepInvariantBfsAllocations("gaslite");
}

TEST(SteadyStateAllocTest, BspLiteBfsFrontier) {
  ExpectSuperstepInvariantBfsAllocations("bsplite");
}

TEST(SteadyStateAllocTest, NativeKernelBfsFrontier) {
  ExpectSuperstepInvariantBfsAllocations("nativekernel");
}

TEST(SteadyStateAllocTest, PushPullWccFrontier) {
  ExpectSuperstepInvariantWccAllocations("pushpull");
}

TEST(SteadyStateAllocTest, SpMatWccFrontier) {
  ExpectSuperstepInvariantWccAllocations("spmat");
}

// --- Incremental engines (ga::mutate) ---------------------------------------
//
// The same contract extended to mutation epochs (DESIGN.md §12): after
// Initialize and the first Update have warmed the frontier staging, every
// further Update at constant n must perform zero data-path heap
// allocations. Probe: two runs over a SHARED pregenerated epoch chain,
// consuming 2 vs 6 epochs — identical warm-up prefix, so any count
// difference is attributable to the 4 extra steady-state epochs.

const Graph& MutateBaseGraph() {
  static const Graph graph = [] {
    datagen::Graph500Config config;
    config.scale = 9;
    config.num_edges = 3000;
    config.directedness = Directedness::kUndirected;
    config.seed = 17;
    auto built = datagen::GenerateGraph500(config);
    if (!built.ok()) std::abort();
    return std::move(built).value();
  }();
  return graph;
}

/// Six constant-n epochs (no vertex minting — growth epochs are allowed
/// to reallocate), pregenerated once so every audited run replays the
/// identical chain without ApplyDeltas inside the counted region.
const std::vector<mutate::MutationResult>& MutationChain() {
  static const std::vector<mutate::MutationResult>& chain = *[] {
    auto* results = new std::vector<mutate::MutationResult>();
    results->reserve(6);
    SplitMix64 rng(5);
    const Graph* current = &MutateBaseGraph();
    for (int epoch = 0; epoch < 6; ++epoch) {
      const mutate::DeltaBatch batch = mutate::RandomDeltaBatch(
          *current, {/*inserts=*/20, /*deletes=*/20, /*new_vertex_every=*/0},
          rng);
      auto applied = mutate::ApplyDeltas(*current, batch);
      if (!applied.ok()) std::abort();
      results->push_back(std::move(*applied));
      current = &results->back().graph;
    }
    return results;
  }();
  return chain;
}

std::uint64_t IncrementalPageRankAllocations(int epochs) {
  const std::vector<mutate::MutationResult>& chain = MutationChain();
  const std::uint64_t before = g_allocations.load();
  mutate::IncrementalPageRank engine(/*iterations=*/8, /*damping=*/0.85);
  if (!engine.Initialize(MutateBaseGraph()).ok()) std::abort();
  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (!engine.Update(chain[epoch]).ok()) std::abort();
  }
  return g_allocations.load() - before;
}

std::uint64_t IncrementalWccAllocations(int epochs) {
  const std::vector<mutate::MutationResult>& chain = MutationChain();
  const std::uint64_t before = g_allocations.load();
  mutate::IncrementalWcc engine;
  if (!engine.Initialize(MutateBaseGraph()).ok()) std::abort();
  for (int epoch = 0; epoch < epochs; ++epoch) {
    if (!engine.Update(chain[epoch]).ok()) std::abort();
  }
  return g_allocations.load() - before;
}

TEST(SteadyStateAllocTest, IncrementalPageRankEpochs) {
  MutationChain();  // pregenerate outside the audit
  const std::uint64_t short_run = IncrementalPageRankAllocations(2);
  const std::uint64_t long_run = IncrementalPageRankAllocations(6);
  ASSERT_GT(short_run, 0u);  // Initialize must be visible to the counter
  EXPECT_EQ(long_run, short_run)
      << "IncrementalPageRank allocated "
      << (long_run - short_run) / 4.0
      << " times per steady-state mutation epoch";
}

TEST(SteadyStateAllocTest, IncrementalWccEpochs) {
  MutationChain();
  const std::uint64_t short_run = IncrementalWccAllocations(2);
  const std::uint64_t long_run = IncrementalWccAllocations(6);
  ASSERT_GT(short_run, 0u);
  EXPECT_EQ(long_run, short_run)
      << "IncrementalWcc allocated " << (long_run - short_run) / 4.0
      << " times per steady-state mutation epoch";
}

}  // namespace
}  // namespace ga::platform
