// Steady-state allocation audit for the flat data-path overhaul
// (DESIGN.md §8): once the first supersteps have warmed every arena,
// pool and slot buffer to its high-water capacity, additional supersteps
// of bsplite PageRank and of every engine's CDLP must perform ZERO heap
// allocations.
//
// Verified with a counting global operator new: the same kernel is run
// through Platform::ExecuteKernel (no Granula tree, no memory accountant
// — the raw data path) at k and k + d iterations; since both runs share
// an identical warm-up prefix, any difference in total allocation count
// is attributable to the d extra steady-state supersteps. The contract
// says that difference is exactly zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "algo/params.h"
#include "core/graph.h"
#include "datagen/graph500.h"
#include "platforms/platform.h"
#include "sysmodel/cluster.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ga::platform {
namespace {

const Graph& TestGraph() {
  static const Graph graph = [] {
    datagen::Graph500Config config;
    config.scale = 10;
    config.num_edges = 6000;
    config.directedness = Directedness::kDirected;
    config.seed = 11;
    auto built = datagen::GenerateGraph500(config);
    if (!built.ok()) std::abort();
    return std::move(built).value();
  }();
  return graph;
}

/// Total operator-new count of one kernel run with `iterations`
/// PR/CDLP iterations, single-threaded, raw data path.
std::uint64_t AllocationsForRun(const std::string& platform_id,
                                Algorithm algorithm, int iterations) {
  const Graph& graph = TestGraph();
  auto platform = CreatePlatform(platform_id);
  if (!platform.ok()) std::abort();
  AlgorithmParams params;
  params.source_vertex = graph.ExternalId(0);
  params.pagerank_iterations = iterations;
  params.cdlp_iterations = iterations;
  ExecutionEnvironment env;
  env.host_pool = nullptr;
  const CostProfile& profile = platform.value()->profile();
  sysmodel::ClusterModel cluster(MakeClusterConfig(env, profile));
  JobContext ctx(cluster, /*memory=*/nullptr, profile,
                 /*processing_op=*/nullptr, env);

  const std::uint64_t before = g_allocations.load();
  auto output = platform.value()->ExecuteKernel(ctx, graph, algorithm,
                                                params);
  const std::uint64_t after = g_allocations.load();
  if (!output.ok()) std::abort();
  return after - before;
}

void ExpectZeroSteadyStateAllocations(const std::string& platform_id,
                                      Algorithm algorithm) {
  // 4 iterations warm every buffer past its high-water mark; the 4 extra
  // iterations of the second run must then allocate nothing.
  const std::uint64_t short_run =
      AllocationsForRun(platform_id, algorithm, 4);
  const std::uint64_t long_run =
      AllocationsForRun(platform_id, algorithm, 8);
  // Guard against a dead counter: warm-up (arena layout, outputs,
  // deployment) must be visible to the interposed operator new.
  ASSERT_GT(short_run, 0u);
  EXPECT_EQ(long_run, short_run)
      << platform_id << " allocated "
      << (long_run - short_run) / 4.0
      << " times per steady-state superstep";
}

TEST(SteadyStateAllocTest, BspLitePageRank) {
  ExpectZeroSteadyStateAllocations("bsplite", Algorithm::kPageRank);
}

TEST(SteadyStateAllocTest, BspLiteCdlp) {
  ExpectZeroSteadyStateAllocations("bsplite", Algorithm::kCdlp);
}

TEST(SteadyStateAllocTest, DataflowCdlp) {
  ExpectZeroSteadyStateAllocations("dataflow", Algorithm::kCdlp);
}

TEST(SteadyStateAllocTest, GasLiteCdlp) {
  ExpectZeroSteadyStateAllocations("gaslite", Algorithm::kCdlp);
}

TEST(SteadyStateAllocTest, SpMatCdlp) {
  ExpectZeroSteadyStateAllocations("spmat", Algorithm::kCdlp);
}

TEST(SteadyStateAllocTest, NativeKernelCdlp) {
  ExpectZeroSteadyStateAllocations("nativekernel", Algorithm::kCdlp);
}

TEST(SteadyStateAllocTest, PushPullCdlp) {
  ExpectZeroSteadyStateAllocations("pushpull", Algorithm::kCdlp);
}

}  // namespace
}  // namespace ga::platform
