// The crash/restart matrix (DESIGN.md §13): spmat and bsplite running
// BFS / PageRank / WCC over R1 and G22, crashed by the fault injector at
// superstep 1, the midpoint and the last superstep, then resumed from
// the checkpoint at --jobs 1 / 2 / 8. The resumed run's outputs,
// WorkLedger and simulated metrics must be BYTE-IDENTICAL to an
// uninterrupted run — the whole point of the checkpoint design.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/exec/thread_pool.h"
#include "faults/faults.h"
#include "harness/dataset_registry.h"
#include "platforms/platform.h"
#include "resilience/checkpoint.h"

namespace ga {
namespace {

harness::BenchmarkConfig FastConfig() {
  harness::BenchmarkConfig config;
  config.scale_divisor = 16384;
  config.seed = 13;
  return config;
}

platform::ExecutionEnvironment BaseEnv(exec::ThreadPool* pool) {
  platform::ExecutionEnvironment env;
  env.num_machines = 2;
  env.threads_per_machine = 8;
  env.memory_budget_bytes = 1LL << 30;
  env.host_pool = pool;
  return env;
}

Result<platform::RunResult> RunOnce(
    const std::string& platform_id, const Graph& graph,
    Algorithm algorithm, const AlgorithmParams& params,
    exec::ThreadPool* pool, const resilience::CheckpointPlan& checkpoint,
    faults::FaultInjector* injector) {
  GA_ASSIGN_OR_RETURN(auto platform,
                      platform::CreatePlatform(platform_id));
  platform::ExecutionEnvironment env = BaseEnv(pool);
  env.checkpoint = checkpoint;
  faults::ScopedGlobalInjector scoped(injector);
  return platform->RunJob(graph, algorithm, params, env);
}

void ExpectBitIdentical(const platform::RunResult& expected,
                        const platform::RunResult& actual,
                        const std::string& what) {
  ASSERT_EQ(expected.output.int_values.size(),
            actual.output.int_values.size())
      << what;
  EXPECT_EQ(expected.output.int_values, actual.output.int_values) << what;
  ASSERT_EQ(expected.output.double_values.size(),
            actual.output.double_values.size())
      << what;
  for (std::size_t i = 0; i < expected.output.double_values.size(); ++i) {
    ASSERT_EQ(std::memcmp(&expected.output.double_values[i],
                          &actual.output.double_values[i], sizeof(double)),
              0)
        << what << " double_values[" << i << "]";
  }
  EXPECT_EQ(expected.metrics.supersteps, actual.metrics.supersteps) << what;
  EXPECT_EQ(expected.metrics.ledger.compute_ops,
            actual.metrics.ledger.compute_ops)
      << what;
  EXPECT_EQ(expected.metrics.ledger.messages,
            actual.metrics.ledger.messages)
      << what;
  EXPECT_EQ(expected.metrics.ledger.remote_bytes,
            actual.metrics.ledger.remote_bytes)
      << what;
  EXPECT_EQ(expected.metrics.ledger.allocations,
            actual.metrics.ledger.allocations)
      << what;
  EXPECT_EQ(expected.metrics.ledger.rows_materialized,
            actual.metrics.ledger.rows_materialized)
      << what;
  EXPECT_EQ(expected.metrics.processing_sim_seconds,
            actual.metrics.processing_sim_seconds)
      << what;
  EXPECT_EQ(expected.metrics.makespan_sim_seconds,
            actual.metrics.makespan_sim_seconds)
      << what;
  EXPECT_EQ(expected.metrics.upload_sim_seconds,
            actual.metrics.upload_sim_seconds)
      << what;
}

TEST(CheckpointRestartTest, RestartMatrixIsByteIdentical) {
  harness::DatasetRegistry registry(FastConfig());
  exec::ThreadPool pool1(1), pool2(2), pool8(8);
  const std::vector<std::pair<int, exec::ThreadPool*>> pools = {
      {1, &pool1}, {2, &pool2}, {8, &pool8}};

  int cells = 0;
  for (const std::string& dataset : {"R1", "G22"}) {
    auto graph = registry.Load(dataset);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    auto params = registry.ParamsFor(dataset);
    ASSERT_TRUE(params.ok()) << params.status().ToString();

    for (const std::string& platform_id : {"spmat", "bsplite"}) {
      for (Algorithm algorithm :
           {Algorithm::kBfs, Algorithm::kPageRank, Algorithm::kWcc}) {
        const std::string cell = platform_id + "/" + dataset + "/" +
                                 std::string(AlgorithmName(algorithm));

        // The oracle: one uninterrupted, checkpoint-free run.
        auto clean = RunOnce(platform_id, **graph, algorithm, *params,
                             &pool2, {}, nullptr);
        ASSERT_TRUE(clean.ok()) << cell << ": " << clean.status().ToString();
        const int total_supersteps = clean->metrics.supersteps;
        ASSERT_GE(total_supersteps, 1) << cell;

        // Crash at the first superstep (before any checkpoint exists:
        // restart is a fresh run), the midpoint, and the last superstep.
        std::set<int> crash_points = {1, std::max(total_supersteps / 2, 1),
                                      total_supersteps};
        for (int crash_at : crash_points) {
          for (const auto& [jobs, pool] : pools) {
            const std::string what =
                cell + " crash@" + std::to_string(crash_at) + " resume@-j" +
                std::to_string(jobs);
            const std::string path =
                ::testing::TempDir() + "/restart_" +
                std::to_string(cells) + "_" + std::to_string(crash_at) +
                "_j" + std::to_string(jobs) + ".gackpt";
            // A leftover file from an aborted earlier invocation would
            // make the crash run resume straight past the fault point.
            std::remove(path.c_str());
            resilience::CheckpointPlan plan;
            plan.path = path;
            plan.cadence = 1;
            plan.resume = true;

            faults::FaultPlan fault;
            fault.crash_at_superstep = crash_at;
            faults::FaultInjector injector(fault);
            auto crashed = RunOnce(platform_id, **graph, algorithm,
                                   *params, &pool2, plan, &injector);
            ASSERT_FALSE(crashed.ok())
                << what << ": injected crash did not fire";
            EXPECT_EQ(crashed.status().code(), StatusCode::kAborted)
                << what << ": " << crashed.status().ToString();
            if (crash_at > 1) {
              EXPECT_TRUE(resilience::CheckpointExists(path))
                  << what << ": no checkpoint left behind";
            }

            auto resumed = RunOnce(platform_id, **graph, algorithm,
                                   *params, pool, plan, nullptr);
            ASSERT_TRUE(resumed.ok())
                << what << ": " << resumed.status().ToString();
            ExpectBitIdentical(*clean, *resumed, what);
            std::remove(path.c_str());
          }
        }
        ++cells;
      }
    }
  }
  EXPECT_EQ(cells, 12);  // 2 platforms x 3 algorithms x 2 datasets
}

// A checkpoint from one job must never restore into another: the job key
// covers platform, algorithm, graph shape and the simulated cluster.
TEST(CheckpointRestartTest, StaleCheckpointFromOtherJobIsRejected) {
  harness::DatasetRegistry registry(FastConfig());
  exec::ThreadPool pool(2);
  auto graph = registry.Load("R1");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  auto params = registry.ParamsFor("R1");
  ASSERT_TRUE(params.ok());

  const std::string path = ::testing::TempDir() + "/stale_job.gackpt";
  std::remove(path.c_str());
  resilience::CheckpointPlan plan;
  plan.path = path;
  plan.cadence = 1;
  plan.resume = true;

  // Leave a BFS checkpoint behind via an injected crash late in the run.
  auto clean = RunOnce("spmat", **graph, Algorithm::kBfs, *params, &pool,
                       {}, nullptr);
  ASSERT_TRUE(clean.ok());
  faults::FaultPlan fault;
  fault.crash_at_superstep = std::max(clean->metrics.supersteps, 2);
  faults::FaultInjector injector(fault);
  auto crashed = RunOnce("spmat", **graph, Algorithm::kBfs, *params, &pool,
                         plan, &injector);
  ASSERT_FALSE(crashed.ok());
  ASSERT_TRUE(resilience::CheckpointExists(path));

  // Resuming a DIFFERENT algorithm from the same path must fail loudly
  // (key mismatch), not restore garbage.
  auto cross = RunOnce("spmat", **graph, Algorithm::kWcc, *params, &pool,
                       plan, nullptr);
  ASSERT_FALSE(cross.ok()) << "stale checkpoint restored across jobs";
  EXPECT_EQ(cross.status().code(), StatusCode::kFailedPrecondition)
      << cross.status().ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ga
