// Unit tests for the checkpoint file format (ga::resilience): write/read
// round-trip, eager verification (checksums, job key, truncation), and
// the atomic-write contract.
#include "resilience/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace ga::resilience {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

StateWriter SampleState() {
  StateWriter writer;
  writer.AddScalar("ctx/supersteps", std::int64_t{7});
  writer.AddScalar("ctx/sim_seconds", 3.14159);
  writer.AddVector("engine/depths",
                   std::vector<std::int64_t>{0, 1, 2, -1, 2});
  writer.AddVector("engine/ranks",
                   std::vector<double>{0.25, 0.5, 0.125, 0.0, 0.125});
  writer.AddBytes("engine/empty", nullptr, 0);
  return writer;
}

TEST(CheckpointTest, RoundTripsAllSections) {
  const std::string path = TempPath("roundtrip.gackpt");
  ASSERT_TRUE(WriteCheckpoint(path, 0xfeed, 7, SampleState()).ok());
  ASSERT_TRUE(CheckpointExists(path));

  auto reader = StateReader::Open(path, 0xfeed);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->superstep(), 7);

  std::int64_t supersteps = 0;
  ASSERT_TRUE(reader->ReadScalar("ctx/supersteps", &supersteps).ok());
  EXPECT_EQ(supersteps, 7);
  double sim_seconds = 0.0;
  ASSERT_TRUE(reader->ReadScalar("ctx/sim_seconds", &sim_seconds).ok());
  EXPECT_EQ(sim_seconds, 3.14159);  // bit-exact, not approximate

  std::vector<std::int64_t> depths;
  ASSERT_TRUE(reader->ReadVector("engine/depths", &depths).ok());
  EXPECT_EQ(depths, (std::vector<std::int64_t>{0, 1, 2, -1, 2}));
  auto ranks = reader->Span<double>("engine/ranks");
  ASSERT_TRUE(ranks.ok());
  ASSERT_EQ(ranks->size(), 5u);
  EXPECT_EQ((*ranks)[2], 0.125);

  EXPECT_TRUE(reader->Has("engine/empty"));
  EXPECT_FALSE(reader->Has("engine/missing"));
  EXPECT_EQ(reader->Bytes("engine/missing").status().code(),
            StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  auto reader = StateReader::Open(TempPath("never_written.gackpt"), 1);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, JobKeyMismatchIsFailedPrecondition) {
  const std::string path = TempPath("wrong_key.gackpt");
  ASSERT_TRUE(WriteCheckpoint(path, 0xaaaa, 3, SampleState()).ok());
  auto reader = StateReader::Open(path, 0xbbbb);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition)
      << reader.status().ToString();
  std::remove(path.c_str());
}

TEST(CheckpointTest, PayloadCorruptionIsDetectedEagerly) {
  const std::string path = TempPath("corrupt.gackpt");
  StateWriter writer;
  // One big section so a byte near the end of the file is provably
  // inside the payload (alignment padding is at most 63 bytes).
  writer.AddVector("engine/big",
                   std::vector<std::int64_t>(1024, 0x0123456789abcdefLL));
  ASSERT_TRUE(WriteCheckpoint(path, 0xfeed, 3, writer).ok());
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(-100, std::ios::end);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(-100, std::ios::end);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }
  auto reader = StateReader::Open(path, 0xfeed);
  ASSERT_FALSE(reader.ok()) << "corrupted payload parsed";
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(CheckpointTest, HeaderCorruptionIsDetected) {
  const std::string path = TempPath("corrupt_header.gackpt");
  ASSERT_TRUE(WriteCheckpoint(path, 0xfeed, 3, SampleState()).ok());
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(40, std::ios::beg);  // inside the header's superstep field
    const char byte = 0x7f;
    file.write(&byte, 1);
  }
  auto reader = StateReader::Open(path, 0xfeed);
  ASSERT_FALSE(reader.ok()) << "corrupted header parsed";
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedFileIsRejected) {
  const std::string path = TempPath("truncated.gackpt");
  ASSERT_TRUE(WriteCheckpoint(path, 0xfeed, 3, SampleState()).ok());
  // Rewrite keeping only the first 80 bytes (header + part of the table).
  std::vector<char> head(80);
  {
    std::ifstream in(path, std::ios::binary);
    in.read(head.data(), static_cast<std::streamsize>(head.size()));
    ASSERT_EQ(in.gcount(), static_cast<std::streamsize>(head.size()));
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
  }
  auto reader = StateReader::Open(path, 0xfeed);
  ASSERT_FALSE(reader.ok()) << "truncated checkpoint parsed";
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(CheckpointTest, OverwriteReplacesAtomically) {
  const std::string path = TempPath("overwrite.gackpt");
  ASSERT_TRUE(WriteCheckpoint(path, 0xfeed, 2, SampleState()).ok());
  StateWriter next;
  next.AddScalar("ctx/supersteps", std::int64_t{4});
  ASSERT_TRUE(WriteCheckpoint(path, 0xfeed, 4, next).ok());
  auto reader = StateReader::Open(path, 0xfeed);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->superstep(), 4);
  EXPECT_FALSE(reader->Has("engine/ranks"));  // fully replaced, not merged
  std::remove(path.c_str());
}

TEST(CheckpointTest, JobKeySeparatesJobsButNotHostParallelism) {
  const std::uint64_t key =
      MakeJobKey("spmat", "bfs", 1000, 5000, 2, 8);
  EXPECT_EQ(key, MakeJobKey("spmat", "bfs", 1000, 5000, 2, 8));
  EXPECT_NE(key, MakeJobKey("bsplite", "bfs", 1000, 5000, 2, 8));
  EXPECT_NE(key, MakeJobKey("spmat", "pr", 1000, 5000, 2, 8));
  EXPECT_NE(key, MakeJobKey("spmat", "bfs", 1001, 5000, 2, 8));
  EXPECT_NE(key, MakeJobKey("spmat", "bfs", 1000, 5000, 4, 8));
}

}  // namespace
}  // namespace ga::resilience
