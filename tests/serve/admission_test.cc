// Tests for serve admission control. The load-shedding decision is a
// pure function of queue contents + request priority (no clocks, no
// randomness), so replaying one event trace must yield identical
// admit/shed/displace decisions on every replay — and the `workers`
// parameter (the serve analogue of --jobs) must never change a decision,
// only the advisory retry hint.
#include "serve/admission.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ga::serve {
namespace {

PendingJob MakeJob(const std::string& id, int priority = 0) {
  PendingJob job;
  job.request.id = id;
  job.request.priority = priority;
  return job;
}

TEST(AdmissionQueueTest, AdmitsUpToCapacityThenSheds) {
  AdmissionQueue queue(2, 1);
  EXPECT_EQ(queue.Submit(MakeJob("a")).outcome, AdmitOutcome::kAdmitted);
  EXPECT_EQ(queue.Submit(MakeJob("b")).outcome, AdmitOutcome::kAdmitted);
  AdmitDecision shed = queue.Submit(MakeJob("c"));
  EXPECT_EQ(shed.outcome, AdmitOutcome::kShed);
  EXPECT_GT(shed.retry_after_ms, 0.0);
  EXPECT_FALSE(shed.victim.has_value());
  const QueueStats stats = queue.stats();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.shed_arrivals, 1);
  EXPECT_EQ(stats.depth, 2);
}

TEST(AdmissionQueueTest, HigherPriorityDisplacesYoungestLowest) {
  AdmissionQueue queue(2, 1);
  queue.Submit(MakeJob("old-low", 0));
  queue.Submit(MakeJob("young-low", 0));
  // Equal priority never displaces: the arrival itself is shed.
  EXPECT_EQ(queue.Submit(MakeJob("equal", 0)).outcome, AdmitOutcome::kShed);
  // Strictly higher priority displaces the YOUNGEST of the lowest
  // priority tier — the oldest keeps the slot it has waited for.
  AdmitDecision displaced = queue.Submit(MakeJob("vip", 5));
  EXPECT_EQ(displaced.outcome, AdmitOutcome::kAdmitted);
  ASSERT_TRUE(displaced.victim.has_value());
  EXPECT_EQ(displaced.victim->request.id, "young-low");
  EXPECT_EQ(queue.stats().shed_victims, 1);
  // Pop order: highest priority first, FIFO within a priority.
  EXPECT_EQ(queue.Pop()->request.id, "vip");
  EXPECT_EQ(queue.Pop()->request.id, "old-low");
}

TEST(AdmissionQueueTest, PopIsPriorityThenFifo) {
  AdmissionQueue queue(8, 1);
  queue.Submit(MakeJob("a0", 0));
  queue.Submit(MakeJob("b2", 2));
  queue.Submit(MakeJob("c0", 0));
  queue.Submit(MakeJob("d2", 2));
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) order.push_back(queue.Pop()->request.id);
  EXPECT_EQ(order, (std::vector<std::string>{"b2", "d2", "a0", "c0"}));
}

TEST(AdmissionQueueTest, CloseStopsAdmissionAndDrainsQueued) {
  AdmissionQueue queue(4, 1);
  queue.Submit(MakeJob("queued"));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.Submit(MakeJob("late")).outcome, AdmitOutcome::kClosed);
  // Already-queued work still drains, then Pop reports end-of-queue.
  auto job = queue.Pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->request.id, "queued");
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(AdmissionQueueTest, TakeAllRemovesEverythingQueued) {
  AdmissionQueue queue(4, 1);
  queue.Submit(MakeJob("a"));
  queue.Submit(MakeJob("b", 3));
  std::vector<PendingJob> taken = queue.TakeAll();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(queue.depth(), 0);
}

// The determinism contract behind ISSUE's "same trace + seed => same
// decisions at any --jobs": replay one interleaved submit/pop trace
// against queues configured with different worker counts and require
// bit-identical decision sequences.
TEST(AdmissionQueueTest, TraceReplayIsDeterministicAtAnyWorkerCount) {
  struct Event {
    enum { kSubmit, kPop } kind;
    std::string id;
    int priority;
  };
  std::vector<Event> trace;
  // A deterministic pseudo-trace: bursts that overflow capacity, mixed
  // priorities, interleaved pops (seeded LCG, fixed forever).
  std::uint64_t state = 20160809;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>(state >> 33);
  };
  for (int i = 0; i < 200; ++i) {
    if (next() % 4 == 0) {
      trace.push_back({Event::kPop, "", 0});
    } else {
      trace.push_back(
          {Event::kSubmit, "r" + std::to_string(i), next() % 3});
    }
  }

  auto replay = [&trace](int workers) {
    AdmissionQueue queue(4, workers);
    std::vector<std::string> decisions;
    for (const Event& event : trace) {
      if (event.kind == Event::kPop) {
        if (queue.depth() > 0) {
          decisions.push_back("pop:" + queue.Pop()->request.id);
        }
        continue;
      }
      AdmitDecision decision = queue.Submit(MakeJob(event.id,
                                                    event.priority));
      switch (decision.outcome) {
        case AdmitOutcome::kAdmitted:
          decisions.push_back(
              decision.victim.has_value()
                  ? "displace:" + decision.victim->request.id + "<-" +
                        event.id
                  : "admit:" + event.id);
          break;
        case AdmitOutcome::kShed:
          decisions.push_back("shed:" + event.id);
          break;
        case AdmitOutcome::kClosed:
          decisions.push_back("closed:" + event.id);
          break;
      }
    }
    return decisions;
  };

  const std::vector<std::string> base = replay(1);
  EXPECT_FALSE(base.empty());
  // Decisions are independent of the worker count and stable across
  // replays.
  EXPECT_EQ(replay(2), base);
  EXPECT_EQ(replay(8), base);
  EXPECT_EQ(replay(1), base);
  // The trace must actually exercise every decision kind.
  int sheds = 0, displaces = 0, admits = 0;
  for (const std::string& d : base) {
    if (d.rfind("shed:", 0) == 0) ++sheds;
    if (d.rfind("displace:", 0) == 0) ++displaces;
    if (d.rfind("admit:", 0) == 0) ++admits;
  }
  EXPECT_GT(sheds, 0);
  EXPECT_GT(displaces, 0);
  EXPECT_GT(admits, 0);
}

TEST(AdmissionQueueTest, RetryHintTracksServiceEwmaAndDepth) {
  AdmissionQueue queue(4, 2);
  const double initial = queue.RetryAfterHintMs();
  EXPECT_GT(initial, 0.0);
  // Feeding slow completions raises the hint; occupancy scales it.
  for (int i = 0; i < 10; ++i) queue.OnJobFinished(1000.0);
  EXPECT_GT(queue.RetryAfterHintMs(), initial);
  const double idle_hint = queue.RetryAfterHintMs();
  queue.Submit(MakeJob("a"));
  queue.Submit(MakeJob("b"));
  EXPECT_GT(queue.RetryAfterHintMs(), idle_hint);
}

}  // namespace
}  // namespace ga::serve
