// Tests for the serve wire protocol: request parsing and response
// rendering (one JSON object per line, each way).
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "core/json_reader.h"

namespace ga::serve {
namespace {

TEST(ParseRequestTest, ParsesFullRunRequest) {
  auto request = ParseRequest(
      R"({"op":"run","id":"r1","algorithm":"pr","dataset":"R2",)"
      R"("platform":"spmat","priority":2,"deadline_ms":1500,)"
      R"("validate":true,"faults":"crash_at_superstep=3",)"
      R"("machines":4,"threads":16})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, RequestOp::kRun);
  EXPECT_EQ(request->id, "r1");
  EXPECT_EQ(request->algorithm, Algorithm::kPageRank);
  EXPECT_EQ(request->dataset, "R2");
  EXPECT_EQ(request->platform, "spmat");
  EXPECT_EQ(request->priority, 2);
  EXPECT_DOUBLE_EQ(request->deadline_ms, 1500.0);
  EXPECT_TRUE(request->validate);
  EXPECT_EQ(request->faults, "crash_at_superstep=3");
  EXPECT_EQ(request->num_machines, 4);
  EXPECT_EQ(request->threads_per_machine, 16);
}

TEST(ParseRequestTest, DefaultsAreMinimal) {
  auto request = ParseRequest(R"({"op":"run","id":"a","dataset":"R1"})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->algorithm, Algorithm::kBfs);
  EXPECT_EQ(request->platform, "bsplite");
  EXPECT_EQ(request->priority, 0);
  EXPECT_DOUBLE_EQ(request->deadline_ms, 0.0);
  EXPECT_FALSE(request->validate);
}

TEST(ParseRequestTest, ParsesCancelAndStats) {
  auto cancel = ParseRequest(R"({"op":"cancel","id":"r9"})");
  ASSERT_TRUE(cancel.ok());
  EXPECT_EQ(cancel->op, RequestOp::kCancel);
  EXPECT_EQ(cancel->id, "r9");
  // stats needs no id.
  auto stats = ParseRequest(R"({"op":"stats"})");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->op, RequestOp::kStats);
}

TEST(ParseRequestTest, ParsesMetricsWithoutId) {
  auto metrics = ParseRequest(R"({"op":"metrics"})");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->op, RequestOp::kMetrics);
}

TEST(ParseRequestTest, RejectsMalformedRequests) {
  for (const char* bad : {
           "not json",
           "[1,2,3]",                                    // not an object
           R"({"op":"explode","id":"x"})",               // unknown op
           R"({"op":"run","dataset":"R1"})",             // missing id
           R"({"op":"run","id":"x"})",                   // missing dataset
           R"({"op":"run","id":"x","dataset":"R1","algorithm":"dijkstra"})",
           R"({"op":"run","id":"x","dataset":"R1","deadline_ms":-1})",
           R"({"op":"run","id":"x","dataset":"R1","machines":0})",
           R"({"op":"cancel"})",                         // cancel needs id
       }) {
    auto request = ParseRequest(bad);
    EXPECT_FALSE(request.ok()) << "input: " << bad;
    if (!request.ok()) {
      EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(FormatResponseTest, CompletedResponseRoundTrips) {
  Response response;
  response.id = "r1";
  response.status = "completed";
  response.output_fnv = "6c92813848aed09e";
  response.tproc_seconds = 2.5;
  response.makespan_seconds = 10.0;
  response.supersteps = 6;
  response.validated = true;
  auto doc = json::Parse(FormatResponse(response));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("id"), "r1");
  EXPECT_EQ(doc->GetString("status"), "completed");
  EXPECT_EQ(doc->GetString("output_fnv"), "6c92813848aed09e");
  EXPECT_DOUBLE_EQ(doc->GetNumber("tproc_seconds"), 2.5);
  EXPECT_EQ(doc->GetNumber("supersteps"), 6.0);
  EXPECT_TRUE(doc->GetBool("validated"));
  EXPECT_FALSE(doc->Has("retry_after_ms"));
  EXPECT_FALSE(doc->Has("code"));
}

TEST(FormatResponseTest, ShedResponseCarriesRetryAfter) {
  Response shed = ShedResponse("r2", 125.0, "admission queue full");
  auto doc = json::Parse(FormatResponse(shed));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("status"), "shed");
  EXPECT_EQ(doc->GetString("code"), "RESOURCE_EXHAUSTED");
  EXPECT_DOUBLE_EQ(doc->GetNumber("retry_after_ms"), 125.0);
}

TEST(FormatResponseTest, StatsJsonIsSplicedAsObject) {
  Response stats;
  stats.status = "stats";
  stats.stats_json = R"({"submitted":3,"completed":2})";
  auto doc = json::Parse(FormatResponse(stats));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* spliced = doc->Find("stats");
  ASSERT_NE(spliced, nullptr);
  ASSERT_TRUE(spliced->is_object());
  EXPECT_DOUBLE_EQ(spliced->GetNumber("submitted"), 3.0);
}

TEST(FormatResponseTest, StageTimingsAppearOnlyWhenMeasured) {
  Response response;
  response.id = "r1";
  response.status = "completed";
  // Default (-1) queue_wait_ms means no staging was measured: no fields.
  std::string line = FormatResponse(response);
  EXPECT_EQ(line.find("queue_wait_ms"), std::string::npos);
  response.queue_wait_ms = 0.25;
  response.load_ms = 1.5;
  response.exec_ms = 12.0;
  auto doc = json::Parse(FormatResponse(response));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_DOUBLE_EQ(doc->GetNumber("queue_wait_ms"), 0.25);
  EXPECT_DOUBLE_EQ(doc->GetNumber("load_ms"), 1.5);
  EXPECT_DOUBLE_EQ(doc->GetNumber("exec_ms"), 12.0);
}

TEST(FormatResponseTest, MetricsBodyRidesAsJsonString) {
  Response response;
  response.status = "metrics";
  response.body = "# TYPE ga_x counter\nga_x 1\n";
  const std::string line = FormatResponse(response);
  // One-line framing survives: the newlines live inside a JSON string.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto doc = json::Parse(line);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetString("body"), response.body);
}

TEST(ErrorResponseTest, MapsStatusCodesToProtocolSlugs) {
  EXPECT_EQ(ErrorResponse("x", Status::Cancelled("c")).status, "cancelled");
  EXPECT_EQ(ErrorResponse("x", Status::DeadlineExceeded("d")).status,
            "timed-out");
  EXPECT_EQ(ErrorResponse("x", Status::ResourceExhausted("r")).status,
            "shed");
  EXPECT_EQ(ErrorResponse("x", Status::Aborted("a")).status, "crashed");
  EXPECT_EQ(ErrorResponse("x", Status::Unsupported("u")).status,
            "unsupported");
  EXPECT_EQ(ErrorResponse("x", Status::InvalidArgument("i")).status,
            "error");
  EXPECT_EQ(ErrorResponse("x", Status::Internal("e")).status, "failed");
  Response mapped = ErrorResponse("x", Status::Cancelled("the reason"));
  EXPECT_EQ(mapped.code, "CANCELLED");
  EXPECT_EQ(mapped.message, "the reason");
}

}  // namespace
}  // namespace ga::serve
