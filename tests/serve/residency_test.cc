// Tests for the serve memory-budget governor: refcounted residency,
// LRU eviction under a byte budget, and the graceful degradation ladder
// (evict idle -> wait for a release -> shed outright).
#include "serve/residency.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "testing/graph_fixtures.h"

namespace ga::serve {
namespace {

// A loader of real (tiny) graphs with scripted per-id sizes: the
// residency layer is told each graph costs `scripted_bytes` via the
// estimator, and the true-up uses the graph's actual bytes — tests pin
// both paths by using the actual bytes as the script.
class ScriptedLoader {
 public:
  void Script(const std::string& id, int cycle_vertices) {
    graphs_[id] = std::make_shared<const Graph>(
        ga::testing::MakeUndirectedCycle(cycle_vertices));
    bytes_[id] = GraphResidentBytes(*graphs_[id]);
  }

  std::int64_t bytes(const std::string& id) const { return bytes_.at(id); }
  int loads(const std::string& id) const {
    auto it = loads_.find(id);
    return it == loads_.end() ? 0 : it->second;
  }

  SnapshotResidency::Loader AsLoader() {
    return [this](const std::string& id)
               -> Result<std::shared_ptr<const Graph>> {
      auto it = graphs_.find(id);
      if (it == graphs_.end()) return Status::NotFound("no dataset " + id);
      ++loads_[id];
      return it->second;
    };
  }
  SnapshotResidency::SizeEstimator AsEstimator() {
    return [this](const std::string& id) -> std::int64_t {
      auto it = bytes_.find(id);
      return it == bytes_.end() ? 0 : it->second;
    };
  }

 private:
  std::map<std::string, std::shared_ptr<const Graph>> graphs_;
  std::map<std::string, std::int64_t> bytes_;
  std::map<std::string, int> loads_;
};

TEST(GraphResidentBytesTest, CountsArraysWithoutDoubleCountingAliases) {
  const Graph directed = ga::testing::MakeDirectedPath(10);
  const Graph undirected = ga::testing::MakeUndirectedCycle(10);
  EXPECT_GT(GraphResidentBytes(directed), 0);
  EXPECT_GT(GraphResidentBytes(undirected), 0);
  // The directed total strictly exceeds the out-CSR alone (ids, edges,
  // and the separate in-CSC all count).
  EXPECT_GT(GraphResidentBytes(directed),
            static_cast<std::int64_t>(
                directed.out_offsets().size_bytes() +
                directed.out_targets().size_bytes()));
}

TEST(SnapshotResidencyTest, SharesOneResidentGraphAcrossHandles) {
  ScriptedLoader loader;
  loader.Script("A", 32);
  SnapshotResidency residency(0, loader.AsLoader(), loader.AsEstimator());
  auto first = residency.Acquire("A");
  auto second = residency.Acquire("A");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get()) << "same resident graph shared";
  EXPECT_EQ(loader.loads("A"), 1);
  EXPECT_EQ(residency.hits(), 1);
  EXPECT_EQ(residency.misses(), 1);
  EXPECT_EQ(residency.resident_bytes(), loader.bytes("A"));
}

TEST(SnapshotResidencyTest, IdleEntriesStayCachedUntilBudgetWantsRoom) {
  ScriptedLoader loader;
  loader.Script("A", 32);
  SnapshotResidency residency(0, loader.AsLoader(), loader.AsEstimator());
  { auto handle = residency.Acquire("A"); ASSERT_TRUE(handle.ok()); }
  // Handle dropped; unlimited budget keeps the graph resident as cache.
  EXPECT_EQ(residency.resident_bytes(), loader.bytes("A"));
  auto again = residency.Acquire("A");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(loader.loads("A"), 1) << "cache hit must not reload";
}

TEST(SnapshotResidencyTest, EvictsIdleEntriesInLruOrder) {
  ScriptedLoader loader;
  loader.Script("A", 32);
  loader.Script("B", 32);
  loader.Script("C", 32);
  const std::int64_t each = loader.bytes("A");
  // Room for exactly two resident graphs.
  SnapshotResidency residency(2 * each + each / 2, loader.AsLoader(),
                              loader.AsEstimator());
  { auto a = residency.Acquire("A"); ASSERT_TRUE(a.ok()); }
  { auto b = residency.Acquire("B"); ASSERT_TRUE(b.ok()); }
  // Touch A so B becomes the least recently used.
  { auto a = residency.Acquire("A"); ASSERT_TRUE(a.ok()); }
  EXPECT_EQ(residency.ResidentIds(),
            (std::vector<std::string>{"B", "A"}));
  // C needs room: the LRU entry (B) goes, A stays.
  { auto c = residency.Acquire("C"); ASSERT_TRUE(c.ok()); }
  EXPECT_EQ(residency.evictions(), 1);
  EXPECT_EQ(residency.ResidentIds(),
            (std::vector<std::string>{"A", "C"}));
  EXPECT_LE(residency.resident_bytes(), residency.budget_bytes());
  // Re-acquiring B is a fresh load.
  { auto b = residency.Acquire("B"); ASSERT_TRUE(b.ok()); }
  EXPECT_EQ(loader.loads("B"), 2);
}

TEST(SnapshotResidencyTest, PinnedEntriesAreNeverEvicted) {
  ScriptedLoader loader;
  loader.Script("A", 32);
  loader.Script("B", 32);
  SnapshotResidency residency(loader.bytes("A") + loader.bytes("B") / 2,
                              loader.AsLoader(), loader.AsEstimator());
  auto pinned = residency.Acquire("A");
  ASSERT_TRUE(pinned.ok());
  // B does not fit while A is pinned: Acquire must wait, bounded by the
  // cancel deadline, and surface kDeadlineExceeded — never evict A.
  exec::CancelToken deadline;
  deadline.SetDeadlineAfter(std::chrono::milliseconds(60));
  auto blocked = residency.Acquire("B", &deadline);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(residency.evictions(), 0);
  EXPECT_EQ(residency.ResidentIds(),
            (std::vector<std::string>{"A"}));
}

TEST(SnapshotResidencyTest, WaitingAcquireProceedsWhenPinReleases) {
  ScriptedLoader loader;
  loader.Script("A", 32);
  loader.Script("B", 32);
  SnapshotResidency residency(loader.bytes("A") + loader.bytes("B") / 2,
                              loader.AsLoader(), loader.AsEstimator());
  auto pinned = residency.Acquire("A");
  ASSERT_TRUE(pinned.ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto handle = residency.Acquire("B");  // serialize-rather-than-OOM
    EXPECT_TRUE(handle.ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_FALSE(acquired.load()) << "must wait while A is pinned";
  pinned->reset();  // release the pin: A becomes evictable
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GE(residency.evictions(), 1);
  EXPECT_LE(residency.resident_bytes(), residency.budget_bytes());
}

TEST(SnapshotResidencyTest, DatasetLargerThanBudgetIsShedOutright) {
  ScriptedLoader loader;
  loader.Script("huge", 256);
  SnapshotResidency residency(loader.bytes("huge") / 2, loader.AsLoader(),
                              loader.AsEstimator());
  auto handle = residency.Acquire("huge");
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(residency.resident_bytes(), 0);
}

TEST(SnapshotResidencyTest, CancelledAcquireReturnsCancelled) {
  ScriptedLoader loader;
  loader.Script("A", 32);
  SnapshotResidency residency(0, loader.AsLoader(), loader.AsEstimator());
  exec::CancelToken token;
  token.Cancel("drain");
  auto handle = residency.Acquire("A", &token);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kCancelled);
}

TEST(SnapshotResidencyTest, LoaderFailurePropagatesAndReleasesReservation) {
  ScriptedLoader loader;
  loader.Script("A", 32);
  SnapshotResidency residency(4 * loader.bytes("A"), loader.AsLoader(),
                              loader.AsEstimator());
  auto missing = residency.Acquire("nope");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(residency.resident_bytes(), 0) << "reservation must roll back";
  // The failure leaves the residency fully usable.
  auto handle = residency.Acquire("A");
  EXPECT_TRUE(handle.ok());
}

TEST(SnapshotResidencyTest, EvictIdleDropsOnlyUnpinned) {
  ScriptedLoader loader;
  loader.Script("A", 32);
  loader.Script("B", 32);
  SnapshotResidency residency(0, loader.AsLoader(), loader.AsEstimator());
  auto pinned = residency.Acquire("A");
  ASSERT_TRUE(pinned.ok());
  { auto b = residency.Acquire("B"); ASSERT_TRUE(b.ok()); }
  residency.EvictIdle();
  EXPECT_EQ(residency.ResidentIds(),
            (std::vector<std::string>{"A"}));
  EXPECT_EQ(residency.resident_bytes(), loader.bytes("A"));
}

}  // namespace
}  // namespace ga::serve
