// End-to-end tests for the ga::serve daemon core: in-process submission
// through the real admission/residency/execution path (no socket — the
// protocol layer has its own tests; the CLI smoke covers the listener).
#include "serve/server.h"

#include <gtest/gtest.h>

#include <csignal>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algo/output.h"
#include "core/exec/thread_pool.h"
#include "core/json_reader.h"
#include "harness/dataset_registry.h"
#include "platforms/platform.h"
#include "store/snapshot.h"

namespace ga::serve {
namespace {

harness::BenchmarkConfig TinyBench() {
  harness::BenchmarkConfig bench;
  bench.scale_divisor = 16384;  // a few dozen vertices per dataset
  bench.seed = 42;
  bench.host_jobs = 2;
  return bench;
}

ServeOptions BaseOptions() {
  ServeOptions options;
  options.queue_capacity = 8;
  options.workers = 1;
  options.bench = TinyBench();
  return options;
}

Request RunRequestFor(const std::string& id, const std::string& dataset,
                      Algorithm algorithm = Algorithm::kBfs) {
  Request request;
  request.op = RequestOp::kRun;
  request.id = id;
  request.dataset = dataset;
  request.algorithm = algorithm;
  return request;
}

/// Thread-safe response sink for the asynchronous Submit callback.
struct ResponseCollector {
  std::mutex mutex;
  std::condition_variable arrived;
  std::vector<Response> responses;

  std::function<void(const Response&)> Callback() {
    return [this](const Response& response) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        responses.push_back(response);
      }
      arrived.notify_all();
    };
  }

  Response WaitFor(const std::string& id) {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      for (const Response& response : responses) {
        if (response.id == id) return response;
      }
      arrived.wait(lock);
    }
  }

  std::size_t Count() {
    std::lock_guard<std::mutex> lock(mutex);
    return responses.size();
  }
};

// Admission decisions surface synchronously through Submit when the
// queue is full — with no executors running (Start never called) the
// queue state is fully deterministic.
TEST(ServerAdmissionTest, ShedsAndDisplacesDeterministically) {
  ResponseCollector collector;
  ServeOptions options = BaseOptions();
  options.queue_capacity = 2;
  Server server(options);
  server.Submit(RunRequestFor("a", "R1"), collector.Callback());
  server.Submit(RunRequestFor("b", "R1"), collector.Callback());
  EXPECT_EQ(collector.Count(), 0u) << "admitted jobs respond later";
  // Queue full, equal priority: the arrival is shed with a retry hint.
  server.Submit(RunRequestFor("c", "R1"), collector.Callback());
  {
    Response shed = collector.WaitFor("c");
    EXPECT_EQ(shed.status, "shed");
    EXPECT_EQ(shed.code, "RESOURCE_EXHAUSTED");
    EXPECT_GT(shed.retry_after_ms, 0.0);
  }
  // A higher-priority arrival displaces the youngest queued job.
  Request vip = RunRequestFor("vip", "R1");
  vip.priority = 9;
  server.Submit(vip, collector.Callback());
  {
    Response displaced = collector.WaitFor("b");
    EXPECT_EQ(displaced.status, "shed");
    EXPECT_NE(displaced.message.find("displaced"), std::string::npos);
  }
  EXPECT_EQ(server.StatsSnapshot().queue.shed_victims, 1);
}

TEST(ServerAdmissionTest, DuplicateInFlightIdIsRejected) {
  ResponseCollector collector;
  Server server(BaseOptions());
  server.Submit(RunRequestFor("same", "R1"), collector.Callback());
  server.Submit(RunRequestFor("same", "R1"), collector.Callback());
  Response duplicate = collector.WaitFor("same");
  EXPECT_EQ(duplicate.code, "ALREADY_EXISTS");
}

TEST(ServerTest, CompletedRunMatchesBatchModeByteForByte) {
  ResponseCollector collector;
  ServeOptions options = BaseOptions();
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  server.Submit(RunRequestFor("r1", "R2", Algorithm::kBfs),
                collector.Callback());
  Response response = collector.WaitFor("r1");
  ASSERT_EQ(response.status, "completed") << response.message;
  EXPECT_EQ(response.output_fnv.size(), 16u);
  EXPECT_GT(response.supersteps, 0);
  EXPECT_GT(response.tproc_seconds, 0.0);

  // The same workload through the batch path must produce the identical
  // output bytes (the serve/batch identity the chaos bench relies on).
  harness::DatasetRegistry registry(options.bench);
  exec::ThreadPool pool(options.bench.host_jobs);
  registry.set_host_pool(&pool);
  auto graph = registry.Load("R2");
  ASSERT_TRUE(graph.ok());
  auto params = registry.ParamsFor("R2");
  ASSERT_TRUE(params.ok());
  auto platform = platform::CreatePlatform("bsplite");
  ASSERT_TRUE(platform.ok());
  platform::ExecutionEnvironment env;
  env.num_machines = 1;
  env.threads_per_machine = 32;
  env.memory_budget_bytes = options.bench.ScaledMemoryBudget();
  env.overhead_scale =
      1.0 / static_cast<double>(options.bench.scale_divisor);
  env.host_pool = &pool;
  auto run = (*platform)->RunJob(**graph, Algorithm::kBfs, *params, env);
  ASSERT_TRUE(run.ok());
  const std::string text = FormatOutput(**graph, run->output);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(
                    store::Fnv1a64(text.data(), text.size())));
  EXPECT_EQ(response.output_fnv, hex);
  EXPECT_TRUE(server.Drain().ok());
  EXPECT_EQ(server.StatsSnapshot().completed, 1);
}

TEST(ServerTest, ValidatedRunSetsValidatedFlag) {
  ResponseCollector collector;
  Server server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  Request request = RunRequestFor("v1", "R1", Algorithm::kPageRank);
  request.validate = true;
  server.Submit(request, collector.Callback());
  Response response = collector.WaitFor("v1");
  ASSERT_EQ(response.status, "completed") << response.message;
  EXPECT_TRUE(response.validated);
}

TEST(ServerTest, ExpiredDeadlineSurfacesTimedOut) {
  ResponseCollector collector;
  Server server(BaseOptions());  // one executor
  ASSERT_TRUE(server.Start().ok());
  // "slow" occupies the executor for at least the cold dataset load;
  // "late" has a 1 ms deadline that expires while it waits in the queue.
  server.Submit(RunRequestFor("slow", "R2"), collector.Callback());
  Request late = RunRequestFor("late", "R2");
  late.deadline_ms = 1.0;
  server.Submit(late, collector.Callback());
  Response response = collector.WaitFor("late");
  EXPECT_EQ(response.status, "timed-out");
  EXPECT_EQ(response.code, "DEADLINE_EXCEEDED");
  EXPECT_EQ(collector.WaitFor("slow").status, "completed");
  EXPECT_EQ(server.StatsSnapshot().timed_out, 1);
}

TEST(ServerTest, CancelStopsInFlightRequestAndFreesExecutor) {
  ResponseCollector collector;
  Server server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  // "blocker" occupies the single executor, so "doomed" is still queued
  // (or at best mid-load) when the cancel lands — deterministic.
  server.Submit(RunRequestFor("blocker", "R2"), collector.Callback());
  server.Submit(RunRequestFor("doomed", "R3"), collector.Callback());
  Response ack = server.Cancel("doomed", "test cancel");
  EXPECT_EQ(ack.status, "cancel-requested");
  Response response = collector.WaitFor("doomed");
  EXPECT_EQ(response.status, "cancelled");
  EXPECT_EQ(response.code, "CANCELLED");
  EXPECT_EQ(collector.WaitFor("blocker").status, "completed");
  // The executor slot is free for the next job.
  server.Submit(RunRequestFor("next", "R1"), collector.Callback());
  EXPECT_EQ(collector.WaitFor("next").status, "completed");
  // A finished request is no longer cancellable.
  EXPECT_EQ(server.Cancel("doomed", "again").code, "NOT_FOUND");
  EXPECT_EQ(server.StatsSnapshot().cancelled, 1);
}

TEST(ServerTest, TinyMemoryBudgetShedsWithRetryHint) {
  ResponseCollector collector;
  ServeOptions options = BaseOptions();
  options.memory_budget_bytes = 64;  // smaller than any dataset
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  server.Submit(RunRequestFor("big", "R2"), collector.Callback());
  Response response = collector.WaitFor("big");
  EXPECT_EQ(response.status, "shed");
  EXPECT_EQ(response.code, "RESOURCE_EXHAUSTED");
  EXPECT_GT(response.retry_after_ms, 0.0);
  EXPECT_EQ(server.StatsSnapshot().resident_bytes, 0);
}

TEST(ServerTest, ChaosRequestFailsWithoutLeakingIntoCleanRuns) {
  ResponseCollector collector;
  ServeOptions options = BaseOptions();
  options.workers = 2;  // clean + faulted can overlap
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Request faulted = RunRequestFor("faulted", "R1", Algorithm::kPageRank);
  faulted.faults = "crash_at_superstep=1,seed=7";
  server.Submit(faulted, collector.Callback());
  server.Submit(RunRequestFor("clean", "R1", Algorithm::kPageRank),
                collector.Callback());
  Response faulted_response = collector.WaitFor("faulted");
  EXPECT_NE(faulted_response.status, "completed");
  Response clean_response = collector.WaitFor("clean");
  EXPECT_EQ(clean_response.status, "completed") << clean_response.message;
  // Re-running clean after the fault gives the identical output: the
  // injector never leaked outside the faulted request.
  server.Submit(RunRequestFor("clean2", "R1", Algorithm::kPageRank),
                collector.Callback());
  Response again = collector.WaitFor("clean2");
  ASSERT_EQ(again.status, "completed");
  EXPECT_EQ(again.output_fnv, clean_response.output_fnv);
  EXPECT_EQ(server.StatsSnapshot().faulted_requests, 1);
}

TEST(ServerTest, MalformedFaultPlanIsAUsageError) {
  ResponseCollector collector;
  Server server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  Request request = RunRequestFor("bad", "R1");
  request.faults = "flux_capacitor=1";
  server.Submit(request, collector.Callback());
  EXPECT_EQ(collector.WaitFor("bad").code, "INVALID_ARGUMENT");
}

TEST(ServerTest, DrainFinishCompletesQueuedJobsThenClosesAdmission) {
  ResponseCollector collector;
  Server server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  server.Submit(RunRequestFor("d1", "R1"), collector.Callback());
  server.Submit(RunRequestFor("d2", "R1"), collector.Callback());
  ASSERT_TRUE(server.Drain().ok());
  EXPECT_EQ(collector.WaitFor("d1").status, "completed");
  EXPECT_EQ(collector.WaitFor("d2").status, "completed");
  // Admission is closed after (and during) the drain.
  server.Submit(RunRequestFor("late", "R1"), collector.Callback());
  Response late = collector.WaitFor("late");
  EXPECT_EQ(late.code, "FAILED_PRECONDITION");
  EXPECT_NE(late.message.find("draining"), std::string::npos);
  // Drain is idempotent.
  EXPECT_TRUE(server.Drain().ok());
}

TEST(ServerTest, DrainCancelPolicyCancelsInsteadOfFinishing) {
  ResponseCollector collector;
  ServeOptions options = BaseOptions();
  options.drain = ServeOptions::DrainPolicy::kCancel;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  server.Submit(RunRequestFor("c1", "R2"), collector.Callback());
  server.Submit(RunRequestFor("c2", "R2"), collector.Callback());
  server.Submit(RunRequestFor("c3", "R2"), collector.Callback());
  ASSERT_TRUE(server.Drain().ok());
  // Every job got exactly one response; the queued ones were cancelled
  // (the one already running may have squeaked through to completion).
  int cancelled = 0;
  for (const char* id : {"c1", "c2", "c3"}) {
    Response response = collector.WaitFor(id);
    EXPECT_TRUE(response.status == "cancelled" ||
                response.status == "completed")
        << id << " -> " << response.status;
    if (response.status == "cancelled") ++cancelled;
  }
  EXPECT_EQ(collector.Count(), 3u);
  EXPECT_GE(cancelled, 2);
}

Server* g_signal_server = nullptr;
void HandleDrainSignal(int) {
  if (g_signal_server != nullptr) g_signal_server->RequestDrain();
}

// The CLI wires SIGINT/SIGTERM to RequestDrain (async-signal-safe: an
// atomic store plus a self-pipe write); ServeUntilDrained picks the flag
// up and performs the actual drain off the signal path.

TEST(ServerTelemetryTest, CompletedResponseCarriesStageTimings) {
  ResponseCollector collector;
  Server server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  server.Submit(RunRequestFor("t1", "R1"), collector.Callback());
  Response response = collector.WaitFor("t1");
  ASSERT_EQ(response.status, "completed") << response.message;
  EXPECT_GE(response.queue_wait_ms, 0.0);
  EXPECT_GE(response.load_ms, 0.0);
  EXPECT_GT(response.exec_ms, 0.0);
  // The rendered line surfaces them for socket clients.
  const std::string line = FormatResponse(response);
  EXPECT_NE(line.find("\"queue_wait_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"load_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"exec_ms\":"), std::string::npos);
}

TEST(ServerTelemetryTest, StatsExposeStageDistributionsAndEwma) {
  ResponseCollector collector;
  Server server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  server.Submit(RunRequestFor("s1", "R1"), collector.Callback());
  ASSERT_EQ(collector.WaitFor("s1").status, "completed");
  Response stats = server.Stats();
  ASSERT_EQ(stats.status, "stats");
  auto doc = json::Parse(stats.stats_json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->GetNumber("completed"), 1.0);
  EXPECT_GT(doc->GetNumber("service_ewma_ms"), 0.0);
  EXPECT_EQ(doc->GetNumber("workers"), 1.0);
  const json::Value* stages = doc->Find("stages");
  ASSERT_NE(stages, nullptr);
  for (const char* stage : {"queue_wait", "load", "execute", "serialize"}) {
    const json::Value* entry = stages->Find(stage);
    ASSERT_NE(entry, nullptr) << stage;
    EXPECT_EQ(entry->GetNumber("count"), 1.0) << stage;
    EXPECT_GE(entry->GetNumber("p99_ms"), entry->GetNumber("p50_ms"))
        << stage;
  }
}

TEST(ServerTelemetryTest, MetricsExposesCoreSeriesInPrometheusFormat) {
  ResponseCollector collector;
  ServeOptions options = BaseOptions();
  options.queue_capacity = 1;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  server.Submit(RunRequestFor("m1", "R1"), collector.Callback());
  ASSERT_EQ(collector.WaitFor("m1").status, "completed");
  Response metrics = server.Metrics();
  ASSERT_EQ(metrics.status, "metrics");
  const std::string& body = metrics.body;
  EXPECT_NE(body.find("# TYPE ga_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("ga_serve_requests_total{outcome=\"completed\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE ga_serve_stage_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      body.find("ga_serve_stage_seconds_count{stage=\"execute\"} 1"),
      std::string::npos);
  EXPECT_NE(body.find("ga_serve_admission_total"), std::string::npos);
  EXPECT_NE(body.find("ga_serve_residency_total{event=\"miss\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("ga_exec_chunks_total"), std::string::npos);
  // The rendered response keeps the one-line framing: the exposition
  // rides in a JSON string field.
  const std::string line = FormatResponse(metrics);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetString("body"), body);
}

TEST(ServerTelemetryTest, ServersKeepIsolatedCounters) {
  // Two servers in one process must not bleed request counts into each
  // other (the per-server registry contract).
  ResponseCollector collector;
  Server first(BaseOptions());
  Server second(BaseOptions());
  ASSERT_TRUE(first.Start().ok());
  first.Submit(RunRequestFor("x1", "R1"), collector.Callback());
  ASSERT_EQ(collector.WaitFor("x1").status, "completed");
  EXPECT_EQ(first.StatsSnapshot().completed, 1);
  EXPECT_EQ(second.StatsSnapshot().completed, 0);
}

TEST(ServerTest, SigtermTriggersGracefulDrain) {
  ResponseCollector collector;
  Server server(BaseOptions());
  ASSERT_TRUE(server.Start().ok());
  server.Submit(RunRequestFor("s1", "R1"), collector.Callback());
  g_signal_server = &server;
  struct sigaction drain_action {};
  drain_action.sa_handler = HandleDrainSignal;
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGTERM, &drain_action, &previous), 0);
  std::thread killer([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ::raise(SIGTERM);
  });
  EXPECT_TRUE(server.ServeUntilDrained().ok());
  killer.join();
  ::sigaction(SIGTERM, &previous, nullptr);
  g_signal_server = nullptr;
  EXPECT_TRUE(server.drain_requested());
  EXPECT_EQ(collector.WaitFor("s1").status, "completed");
}

}  // namespace
}  // namespace ga::serve
