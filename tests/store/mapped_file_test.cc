// Regression tests for store::MappedFile's fail-closed behaviour against
// the stat->mmap truncation race: a file that shrinks between the size
// probe and the mapping must be rejected with kIoError, never handed out
// as a mapping whose tail pages SIGBUS on first read.
#include "store/mapped_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

namespace ga::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteBytes(const std::string& path, std::size_t size) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  for (std::size_t i = 0; i < size; ++i) {
    std::fputc(static_cast<int>(i & 0xff), file);
  }
  ASSERT_EQ(std::fclose(file), 0);
}

// The hook fires inside Open's race window; it needs the victim path
// without capture (plain function pointer), so pass it via a global.
std::string* g_truncate_target = nullptr;
std::size_t g_truncate_to = 0;

void TruncateUnderReader(const std::string& path) {
  if (g_truncate_target == nullptr || path != *g_truncate_target) return;
  // Re-open with "r+" and truncate via freopen-less POSIX truncate: the
  // portable way in the test is rewriting the file shorter in place.
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  for (std::size_t i = 0; i < g_truncate_to; ++i) std::fputc('x', file);
  ASSERT_EQ(std::fclose(file), 0);
}

TEST(MappedFileTest, OpensAndReadsBackContent) {
  const std::string path = TempPath("mapped_file_ok.bin");
  WriteBytes(path, 4096 + 17);
  auto file = MappedFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_EQ(file->size(), 4096u + 17u);
  for (std::size_t i = 0; i < file->size(); i += 509) {
    EXPECT_EQ(std::to_integer<int>(file->data()[i]),
              static_cast<int>(i & 0xff))
        << i;
  }
  std::remove(path.c_str());
}

TEST(MappedFileTest, MissingFileIsError) {
  auto file = MappedFile::Open(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(file.ok());
}

TEST(MappedFileTest, EmptyFileIsValidZeroSizeMapping) {
  const std::string path = TempPath("mapped_file_empty.bin");
  WriteBytes(path, 0);
  auto file = MappedFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->size(), 0u);
  std::remove(path.c_str());
}

// The race regression: the file shrinks AFTER Open's initial fstat but
// BEFORE the mapping is served. Open must detect the shrink on the
// still-open descriptor and fail closed.
TEST(MappedFileTest, TruncationUnderReaderFailsClosed) {
  const std::string path = TempPath("mapped_file_race.bin");
  WriteBytes(path, 3 * 4096);

  std::string target = path;
  g_truncate_target = &target;
  g_truncate_to = 100;  // shrink mid-open: tail pages would SIGBUS
  MappedFile::SetOpenRaceTestHook(&TruncateUnderReader);
  auto file = MappedFile::Open(path);
  MappedFile::SetOpenRaceTestHook(nullptr);
  g_truncate_target = nullptr;

  ASSERT_FALSE(file.ok())
      << "a file truncated under the reader was served anyway";
  EXPECT_EQ(file.status().code(), StatusCode::kIoError)
      << file.status().ToString();
  std::remove(path.c_str());
}

// Growth in the window is benign (the mapping covers the original size);
// Open must NOT reject it.
TEST(MappedFileTest, GrowthUnderReaderIsServed) {
  const std::string path = TempPath("mapped_file_grow.bin");
  WriteBytes(path, 4096);

  std::string target = path;
  g_truncate_target = &target;
  g_truncate_to = 2 * 4096;  // the hook rewrites LARGER this time
  MappedFile::SetOpenRaceTestHook(&TruncateUnderReader);
  auto file = MappedFile::Open(path);
  MappedFile::SetOpenRaceTestHook(nullptr);
  g_truncate_target = nullptr;

  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->size(), 4096u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ga::store
