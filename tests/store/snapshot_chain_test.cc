// Versioned snapshot chains (ISSUE PR7): a chained `.gab` child records
// its parent's snapshot checksum plus the exact delta ops that produced
// it. This suite covers the round-trip (ReadChainRecord returns the
// bytes WriteChainedSnapshot stored), the hash-chain integrity checks
// (wrong parent, tampering, truncation — all clean Status, never UB),
// and the replay oracle: ReplayChain re-applies every stored batch and
// must reproduce the stored head CSR bit-for-bit.
#include "store/chain.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/rng.h"
#include "datagen/graph500.h"
#include "mutate/delta.h"
#include "store/snapshot.h"

namespace ga::store {
namespace {

class SnapshotChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ga_chain_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string PathFor(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Writes root + `epochs` chained children into the fixture dir and
  /// returns their paths; `head` receives the final in-memory graph.
  void BuildChain(const Graph& root, int epochs,
                  std::vector<std::string>* paths, Graph* head) {
    paths->clear();
    paths->push_back(PathFor("root.gab"));
    ASSERT_TRUE(WriteSnapshot(root, paths->front()).ok());
    auto checksum = SnapshotChecksum(paths->front());
    ASSERT_TRUE(checksum.ok());

    SplitMix64 rng(4242);
    const Graph* current = &root;
    mutate::MutationResult keep;
    for (int epoch = 1; epoch <= epochs; ++epoch) {
      const mutate::DeltaBatch batch = mutate::RandomDeltaBatch(
          *current,
          {/*inserts=*/25, /*deletes=*/25, /*new_vertex_every=*/11}, rng);
      auto applied = mutate::ApplyDeltas(*current, batch);
      ASSERT_TRUE(applied.ok()) << applied.status().ToString();
      const std::string path =
          PathFor("epoch" + std::to_string(epoch) + ".gab");
      ASSERT_TRUE(WriteChainedSnapshot(applied->graph, path, *checksum,
                                       static_cast<std::uint64_t>(epoch),
                                       batch)
                      .ok());
      paths->push_back(path);
      checksum = SnapshotChecksum(path);
      ASSERT_TRUE(checksum.ok());
      keep = std::move(*applied);
      current = &keep.graph;
    }
    *head = std::move(keep.graph);
  }

  std::filesystem::path dir_;
};

Graph BaseGraph() {
  datagen::Graph500Config config;
  config.scale = 8;
  config.num_edges = 1500;
  config.directedness = Directedness::kUndirected;
  config.seed = 29;
  auto graph = datagen::GenerateGraph500(config);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST_F(SnapshotChainTest, ChainRecordRoundTrip) {
  const Graph root = BaseGraph();
  const std::string root_path = PathFor("root.gab");
  ASSERT_TRUE(WriteSnapshot(root, root_path).ok());
  auto parent_checksum = SnapshotChecksum(root_path);
  ASSERT_TRUE(parent_checksum.ok());

  SplitMix64 rng(7);
  const mutate::DeltaBatch batch = mutate::RandomDeltaBatch(
      root, {/*inserts=*/10, /*deletes=*/10, /*new_vertex_every=*/0}, rng);
  auto applied = mutate::ApplyDeltas(root, batch);
  ASSERT_TRUE(applied.ok());
  const std::string child_path = PathFor("child.gab");
  ASSERT_TRUE(WriteChainedSnapshot(applied->graph, child_path,
                                   *parent_checksum, /*epoch=*/1, batch)
                  .ok());

  // The chained child is still a fully valid snapshot of the child CSR.
  auto loaded = ReadSnapshot(child_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(GraphsBitIdentical(*loaded, applied->graph));

  auto record = ReadChainRecord(child_path);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  ASSERT_TRUE(record->has_value());
  EXPECT_EQ((*record)->parent_checksum, *parent_checksum);
  EXPECT_EQ((*record)->epoch, 1u);
  ASSERT_EQ((*record)->deltas.ops.size(), batch.ops.size());
  EXPECT_EQ(std::memcmp((*record)->deltas.ops.data(), batch.ops.data(),
                        batch.ops.size() * sizeof(mutate::EdgeDelta)),
            0)
      << "stored delta ops are not the bytes that were written";

  // The unchained root reads back as "no chain record", not an error.
  auto root_record = ReadChainRecord(root_path);
  ASSERT_TRUE(root_record.ok()) << root_record.status().ToString();
  EXPECT_FALSE(root_record->has_value());
}

TEST_F(SnapshotChainTest, EmptyBatchLinkRoundTrips) {
  const Graph root = BaseGraph();
  const std::string root_path = PathFor("root.gab");
  ASSERT_TRUE(WriteSnapshot(root, root_path).ok());
  auto checksum = SnapshotChecksum(root_path);
  ASSERT_TRUE(checksum.ok());

  mutate::DeltaBatch empty;
  auto applied = mutate::ApplyDeltas(root, empty);
  ASSERT_TRUE(applied.ok());
  const std::string child_path = PathFor("noop.gab");
  ASSERT_TRUE(WriteChainedSnapshot(applied->graph, child_path, *checksum,
                                   /*epoch=*/1, empty)
                  .ok());
  auto record = ReadChainRecord(child_path);
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  ASSERT_TRUE(record->has_value());
  EXPECT_TRUE((*record)->deltas.ops.empty());

  auto replayed = ReplayChain({root_path, child_path});
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(GraphsBitIdentical(*replayed, root));
}

TEST_F(SnapshotChainTest, ReplayChainReproducesHeadBitExactly) {
  const Graph root = BaseGraph();
  std::vector<std::string> paths;
  Graph head;
  BuildChain(root, /*epochs=*/3, &paths, &head);
  ASSERT_EQ(paths.size(), 4u);

  auto replayed = ReplayChain(paths);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(GraphsBitIdentical(*replayed, head));

  // A replay can also start from any interior snapshot.
  auto suffix = ReplayChain({paths[1], paths[2], paths[3]});
  ASSERT_TRUE(suffix.ok()) << suffix.status().ToString();
  EXPECT_TRUE(GraphsBitIdentical(*suffix, head));
}

TEST_F(SnapshotChainTest, BrokenParentLinkRejected) {
  const Graph root = BaseGraph();
  std::vector<std::string> paths;
  Graph head;
  BuildChain(root, /*epochs=*/3, &paths, &head);

  // Skipping a link breaks the parent-checksum chain.
  auto skipped = ReplayChain({paths[0], paths[2]});
  EXPECT_EQ(skipped.status().code(), StatusCode::kFailedPrecondition);

  // An unchained snapshot cannot sit mid-chain.
  auto unchained = ReplayChain({paths[1], paths[0]});
  EXPECT_EQ(unchained.status().code(), StatusCode::kFailedPrecondition);

  // Reversing the order breaks it too.
  auto reversed = ReplayChain({paths[2], paths[1]});
  EXPECT_EQ(reversed.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SnapshotChainTest, TamperedChainPayloadRejected) {
  const Graph root = BaseGraph();
  std::vector<std::string> paths;
  Graph head;
  BuildChain(root, /*epochs=*/1, &paths, &head);

  // The chain sections are the file's final payloads; flipping a byte
  // near the end corrupts them without touching the CSR sections.
  const std::string& victim = paths[1];
  const auto size = std::filesystem::file_size(victim);
  {
    std::fstream file(victim,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(static_cast<std::streamoff>(size - 5));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(static_cast<std::streamoff>(size - 5));
    file.write(&byte, 1);
  }

  auto record = ReadChainRecord(victim);
  EXPECT_FALSE(record.ok())
      << "tampered chain payload must fail its section checksum";
  auto replayed = ReplayChain(paths);
  EXPECT_FALSE(replayed.ok());
}

TEST_F(SnapshotChainTest, TruncatedChainedSnapshotRejected) {
  const Graph root = BaseGraph();
  std::vector<std::string> paths;
  Graph head;
  BuildChain(root, /*epochs=*/1, &paths, &head);

  const std::string& victim = paths[1];
  const auto size = std::filesystem::file_size(victim);
  std::filesystem::resize_file(victim, size / 2);

  EXPECT_FALSE(ReadChainRecord(victim).ok());
  EXPECT_FALSE(ReadSnapshot(victim).ok());
  EXPECT_FALSE(ReplayChain(paths).ok());
}

}  // namespace
}  // namespace ga::store
