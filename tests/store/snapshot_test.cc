// Round-trip and corruption coverage for the `.gab` snapshot format:
// export -> mmap import must reproduce every CSR byte and every algorithm
// output bit; malformed files of any kind must come back as a clean
// Status, never UB.
#include "store/snapshot.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "algo/reference.h"
#include "store/mapped_file.h"
#include "testing/graph_fixtures.h"

namespace ga::store {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ga_snapshot_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string PathFor(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

// Deterministic pseudo-random graph: sparse external ids, `edges`
// attempted random edges (duplicates dropped by the builder).
Graph RandomGraph(std::uint64_t seed, int vertices, int edges,
                  Directedness directedness, bool weighted) {
  GraphBuilder builder(directedness, weighted);
  std::uint64_t state = seed * 2654435761ULL + 1;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 11;
  };
  for (int v = 0; v < vertices; ++v) {
    builder.AddVertex(static_cast<VertexId>(v) * 7 + (v % 5));
  }
  for (int e = 0; e < edges; ++e) {
    const VertexId s = static_cast<VertexId>(next() % vertices) * 7 +
                       (next() % vertices % 5);
    const VertexId t = static_cast<VertexId>(next() % vertices) * 7 +
                       (next() % vertices % 5);
    if (s == t) continue;
    const Weight w =
        weighted ? static_cast<Weight>(next() % 1000003) / 997.0 : 1.0;
    builder.AddEdge(s, t, w);
  }
  auto graph = std::move(builder).Build();
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

template <typename T>
void ExpectSpanBytesEqual(std::span<const T> expected,
                          std::span<const T> actual, const char* what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  if (expected.empty()) return;  // empty spans may carry null data()
  EXPECT_EQ(std::memcmp(expected.data(), actual.data(),
                        expected.size_bytes()),
            0)
      << what;
}

void ExpectGraphsBitIdentical(const Graph& expected, const Graph& actual) {
  EXPECT_EQ(expected.directedness(), actual.directedness());
  EXPECT_EQ(expected.is_weighted(), actual.is_weighted());
  EXPECT_EQ(expected.max_out_degree(), actual.max_out_degree());
  EXPECT_EQ(expected.max_in_degree(), actual.max_in_degree());
  ExpectSpanBytesEqual(expected.external_ids(), actual.external_ids(),
                       "external_ids");
  ExpectSpanBytesEqual(expected.edges(), actual.edges(), "edges");
  ExpectSpanBytesEqual(expected.out_offsets(), actual.out_offsets(),
                       "out_offsets");
  ExpectSpanBytesEqual(expected.out_targets(), actual.out_targets(),
                       "out_targets");
  ExpectSpanBytesEqual(expected.out_weights(), actual.out_weights(),
                       "out_weights");
  ExpectSpanBytesEqual(expected.in_offsets(), actual.in_offsets(),
                       "in_offsets");
  ExpectSpanBytesEqual(expected.in_sources(), actual.in_sources(),
                       "in_sources");
  ExpectSpanBytesEqual(expected.in_weights(), actual.in_weights(),
                       "in_weights");
}

TEST_F(SnapshotTest, RoundTripsEveryShape) {
  int case_index = 0;
  for (Directedness directedness :
       {Directedness::kDirected, Directedness::kUndirected}) {
    for (bool weighted : {false, true}) {
      for (int vertices : {3, 97, 400}) {
        SCOPED_TRACE("case " + std::to_string(case_index));
        Graph original = RandomGraph(41 + case_index, vertices,
                                     vertices * 6, directedness, weighted);
        const std::string path =
            PathFor("rt_" + std::to_string(case_index) + ".gab");
        ++case_index;
        ASSERT_TRUE(WriteSnapshot(original, path).ok());
        auto loaded = ReadSnapshot(path);
        ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
        EXPECT_TRUE(loaded->is_storage_backed());
        EXPECT_FALSE(original.is_storage_backed());
        ExpectGraphsBitIdentical(original, *loaded);
        EXPECT_TRUE(VerifySnapshot(path).ok());
      }
    }
  }
}

TEST_F(SnapshotTest, LoadedGraphProducesIdenticalAlgorithmOutputs) {
  Graph original = RandomGraph(7, 300, 2400, Directedness::kDirected,
                               /*weighted=*/true);
  const std::string path = PathFor("algo.gab");
  ASSERT_TRUE(WriteSnapshot(original, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const VertexId source = original.ExternalId(0);
  auto bfs_original = reference::Bfs(original, source);
  auto bfs_loaded = reference::Bfs(*loaded, source);
  ASSERT_TRUE(bfs_original.ok());
  ASSERT_TRUE(bfs_loaded.ok());
  EXPECT_EQ(bfs_original->int_values, bfs_loaded->int_values);

  auto pr_original = reference::PageRank(original, 15, 0.85);
  auto pr_loaded = reference::PageRank(*loaded, 15, 0.85);
  ASSERT_TRUE(pr_original.ok());
  ASSERT_TRUE(pr_loaded.ok());
  ASSERT_EQ(pr_original->double_values.size(),
            pr_loaded->double_values.size());
  EXPECT_EQ(std::memcmp(pr_original->double_values.data(),
                        pr_loaded->double_values.data(),
                        pr_original->double_values.size() * sizeof(double)),
            0);
}

TEST_F(SnapshotTest, RoundTripsEmptyAndIsolatedGraphs) {
  {
    GraphBuilder builder(Directedness::kDirected);
    auto empty = std::move(builder).Build();
    ASSERT_TRUE(empty.ok());
    const std::string path = PathFor("empty.gab");
    ASSERT_TRUE(WriteSnapshot(*empty, path).ok());
    auto loaded = ReadSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->num_vertices(), 0);
    EXPECT_EQ(loaded->num_edges(), 0);
  }
  {
    Graph isolated = ga::testing::MakeGraph(Directedness::kUndirected,
                                            {{1, 2}}, {10, 20, 30});
    const std::string path = PathFor("isolated.gab");
    ASSERT_TRUE(WriteSnapshot(isolated, path).ok());
    auto loaded = ReadSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectGraphsBitIdentical(isolated, *loaded);
  }
}

// --- Corruption: every failure is a clean Status, never UB. -----------

class SnapshotCorruptionTest : public SnapshotTest {
 protected:
  void SetUp() override {
    SnapshotTest::SetUp();
    graph_ = RandomGraph(11, 200, 1200, Directedness::kDirected,
                         /*weighted=*/true);
    path_ = PathFor("victim.gab");
    ASSERT_TRUE(WriteSnapshot(graph_, path_).ok());
  }

  std::vector<char> ReadAll() {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void WriteAll(const std::vector<char>& bytes, std::size_t limit) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(std::min(limit, bytes.size())));
  }

  Graph graph_;
  std::string path_;
};

TEST_F(SnapshotCorruptionTest, BadMagicRejected) {
  std::vector<char> bytes = ReadAll();
  bytes[0] = 'X';
  WriteAll(bytes, bytes.size());
  auto loaded = ReadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, VersionSkewRejected) {
  std::vector<char> bytes = ReadAll();
  const std::uint32_t future_version = 99;
  std::memcpy(bytes.data() + 8, &future_version, sizeof(future_version));
  WriteAll(bytes, bytes.size());
  auto loaded = ReadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("unsupported snapshot version"),
            std::string::npos);
}

TEST_F(SnapshotCorruptionTest, ForeignEndianRejected) {
  std::vector<char> bytes = ReadAll();
  std::swap(bytes[12], bytes[15]);  // byte-swap the endian tag
  std::swap(bytes[13], bytes[14]);
  WriteAll(bytes, bytes.size());
  auto loaded = ReadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("endian"), std::string::npos);
}

TEST_F(SnapshotCorruptionTest, TruncationRejectedAtEveryLayer) {
  const std::vector<char> bytes = ReadAll();
  // Shorter than the header, shorter than the section table, and inside
  // the section payloads.
  for (std::size_t limit :
       {std::size_t{10}, std::size_t{70}, bytes.size() / 2}) {
    WriteAll(bytes, limit);
    auto loaded = ReadSnapshot(path_);
    ASSERT_FALSE(loaded.ok()) << "limit " << limit;
    EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  }
}

TEST_F(SnapshotCorruptionTest, HeaderFieldTamperingRejected) {
  std::vector<char> bytes = ReadAll();
  ++bytes[24];  // num_vertices
  WriteAll(bytes, bytes.size());
  auto loaded = ReadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("header checksum"),
            std::string::npos);
}

TEST_F(SnapshotCorruptionTest, PayloadBitFlipCaughtByChecksum) {
  std::vector<char> bytes = ReadAll();
  bytes[bytes.size() - 1] ^= 0x40;  // inside the last section's payload
  WriteAll(bytes, bytes.size());
  auto loaded = ReadSnapshot(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos);
  EXPECT_FALSE(VerifySnapshot(path_).ok());
  // Checksums are the detection layer: the unverified fast path binds
  // views without noticing (documented tradeoff of verify_checksums).
  ReadOptions unverified;
  unverified.verify_checksums = false;
  EXPECT_TRUE(ReadSnapshot(path_, unverified).ok());
}

TEST_F(SnapshotCorruptionTest, MissingFileIsCleanIoError) {
  auto loaded = ReadSnapshot(PathFor("does_not_exist.gab"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(SnapshotTest, InspectReportsHeaderAndSections) {
  Graph graph = RandomGraph(13, 50, 300, Directedness::kUndirected,
                            /*weighted=*/true);
  const std::string path = PathFor("inspect.gab");
  ASSERT_TRUE(WriteSnapshot(graph, path).ok());
  auto info = InspectSnapshot(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->header.version, kSnapshotVersion);
  EXPECT_EQ(info->header.num_vertices,
            static_cast<std::uint64_t>(graph.num_vertices()));
  EXPECT_EQ(info->header.num_edges,
            static_cast<std::uint64_t>(graph.num_edges()));
  // Undirected weighted: ids, edges, out_offsets, out_targets,
  // out_weights; no in_* sections.
  EXPECT_EQ(info->sections.size(), 5u);
  for (const SectionEntry& section : info->sections) {
    EXPECT_EQ(section.offset % kSectionAlignment, 0u);
    EXPECT_NE(SectionKindName(static_cast<SectionKind>(section.kind)),
              "unknown");
  }
}

}  // namespace
}  // namespace ga::store
