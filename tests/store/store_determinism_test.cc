// The acceptance proof for the dataset cache (ISSUE 5): for three
// registry datasets covering all generator families and both
// directedness/weight combinations, a generated-in-RAM graph and its
// exported-then-mmap-loaded twin must be bit-identical — every CSR byte,
// and every engine's outputs, WorkLedger counters and simulated metrics
// at host --jobs 1, 2 and 8. Cache warmth must be invisible to the
// benchmark.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>

#include "core/exec/thread_pool.h"
#include "harness/dataset_registry.h"
#include "platforms/platform.h"

namespace ga::harness {
namespace {

BenchmarkConfig SmallConfig() {
  BenchmarkConfig config;
  config.scale_divisor = 16384;
  config.seed = 7;
  return config;
}

template <typename T>
void ExpectSpanBytesEqual(std::span<const T> expected,
                          std::span<const T> actual, const char* what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  if (expected.empty()) return;  // empty spans may carry null data()
  EXPECT_EQ(std::memcmp(expected.data(), actual.data(),
                        expected.size_bytes()),
            0)
      << what;
}

void ExpectBitIdentical(const platform::RunResult& expected,
                        const platform::RunResult& actual,
                        const std::string& what) {
  ASSERT_EQ(expected.output.int_values.size(),
            actual.output.int_values.size())
      << what;
  EXPECT_EQ(expected.output.int_values, actual.output.int_values) << what;
  ASSERT_EQ(expected.output.double_values.size(),
            actual.output.double_values.size())
      << what;
  for (std::size_t i = 0; i < expected.output.double_values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&expected.output.double_values[i],
                          &actual.output.double_values[i], sizeof(double)),
              0)
        << what << " double_values[" << i << "]";
  }
  EXPECT_EQ(expected.metrics.ledger.compute_ops,
            actual.metrics.ledger.compute_ops)
      << what;
  EXPECT_EQ(expected.metrics.ledger.messages, actual.metrics.ledger.messages)
      << what;
  EXPECT_EQ(expected.metrics.ledger.remote_bytes,
            actual.metrics.ledger.remote_bytes)
      << what;
  EXPECT_EQ(expected.metrics.ledger.allocations,
            actual.metrics.ledger.allocations)
      << what;
  EXPECT_EQ(expected.metrics.ledger.rows_materialized,
            actual.metrics.ledger.rows_materialized)
      << what;
  EXPECT_EQ(expected.metrics.supersteps, actual.metrics.supersteps) << what;
  EXPECT_EQ(expected.metrics.processing_sim_seconds,
            actual.metrics.processing_sim_seconds)
      << what;
  EXPECT_EQ(expected.metrics.makespan_sim_seconds,
            actual.metrics.makespan_sim_seconds)
      << what;
}

class StoreDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_dir_ = std::filesystem::temp_directory_path() /
                ("ga_store_determinism_" + std::to_string(::getpid()));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(data_dir_, ec);
  }

  std::filesystem::path data_dir_;
};

// R1: realproxy, directed, unweighted. R4: realproxy, undirected,
// weighted. G22: graph500, undirected, unweighted.
constexpr const char* kDatasets[] = {"R1", "R4", "G22"};

TEST_F(StoreDeterminismTest, CachedGraphsAreByteIdenticalToGenerated) {
  DatasetRegistry generated_registry(SmallConfig());

  BenchmarkConfig cached_config = SmallConfig();
  cached_config.data_dir = data_dir_.string();
  {
    // First pass populates the snapshot cache (and returns the generated
    // instances).
    DatasetRegistry warmup(cached_config);
    for (const char* id : kDatasets) {
      auto graph = warmup.Load(id);
      ASSERT_TRUE(graph.ok()) << id << ": " << graph.status().ToString();
      EXPECT_FALSE((*graph)->is_storage_backed()) << id;
    }
  }
  DatasetRegistry cached_registry(cached_config);
  for (const char* id : kDatasets) {
    SCOPED_TRACE(id);
    auto generated = generated_registry.Load(id);
    auto cached = cached_registry.Load(id);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    // The warm path must actually be the mmap zero-copy loader.
    ASSERT_TRUE((*cached)->is_storage_backed());

    const Graph& expected = **generated;
    const Graph& actual = **cached;
    EXPECT_EQ(expected.directedness(), actual.directedness());
    EXPECT_EQ(expected.is_weighted(), actual.is_weighted());
    EXPECT_EQ(expected.max_out_degree(), actual.max_out_degree());
    EXPECT_EQ(expected.max_in_degree(), actual.max_in_degree());
    ExpectSpanBytesEqual(expected.external_ids(), actual.external_ids(),
                         "external_ids");
    ExpectSpanBytesEqual(expected.edges(), actual.edges(), "edges");
    ExpectSpanBytesEqual(expected.out_offsets(), actual.out_offsets(),
                         "out_offsets");
    ExpectSpanBytesEqual(expected.out_targets(), actual.out_targets(),
                         "out_targets");
    ExpectSpanBytesEqual(expected.out_weights(), actual.out_weights(),
                         "out_weights");
    ExpectSpanBytesEqual(expected.in_offsets(), actual.in_offsets(),
                         "in_offsets");
    ExpectSpanBytesEqual(expected.in_sources(), actual.in_sources(),
                         "in_sources");
    ExpectSpanBytesEqual(expected.in_weights(), actual.in_weights(),
                         "in_weights");
  }
}

TEST_F(StoreDeterminismTest,
       EnginesProduceIdenticalResultsOnCachedGraphsAtAnyJobs) {
  DatasetRegistry generated_registry(SmallConfig());
  BenchmarkConfig cached_config = SmallConfig();
  cached_config.data_dir = data_dir_.string();
  {
    DatasetRegistry warmup(cached_config);
    for (const char* id : kDatasets) {
      ASSERT_TRUE(warmup.Load(id).ok());
    }
  }
  DatasetRegistry cached_registry(cached_config);

  for (const char* id : kDatasets) {
    auto generated = generated_registry.Load(id);
    auto cached = cached_registry.Load(id);
    ASSERT_TRUE(generated.ok());
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE((*cached)->is_storage_backed());
    auto params = generated_registry.ParamsFor(id);
    ASSERT_TRUE(params.ok());

    // Two engine families (matrix-sweep and Pregel-style message
    // passing) x a traversal and a fixed-point algorithm.
    for (const char* platform_id : {"spmat", "bsplite"}) {
      auto platform = platform::CreatePlatform(platform_id);
      ASSERT_TRUE(platform.ok());
      for (Algorithm algorithm : {Algorithm::kBfs, Algorithm::kPageRank}) {
        for (int jobs : {1, 2, 8}) {
          exec::ThreadPool pool(jobs);
          platform::ExecutionEnvironment env;
          env.num_machines = 2;
          env.threads_per_machine = 8;
          env.memory_budget_bytes = 1LL << 30;
          env.host_pool = &pool;
          const std::string what = std::string(id) + "/" + platform_id +
                                   "/" +
                                   std::string(AlgorithmName(algorithm)) +
                                   " @jobs " + std::to_string(jobs);
          auto on_generated =
              (*platform)->RunJob(**generated, algorithm, *params, env);
          auto on_cached =
              (*platform)->RunJob(**cached, algorithm, *params, env);
          ASSERT_TRUE(on_generated.ok())
              << what << ": " << on_generated.status().ToString();
          ASSERT_TRUE(on_cached.ok())
              << what << ": " << on_cached.status().ToString();
          ExpectBitIdentical(*on_generated, *on_cached, what);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ga::harness
