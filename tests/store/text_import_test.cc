// The parallel chunked `.v`/`.e` importer/exporter: identical graphs at
// any host thread count, byte-identical files vs the serial writer, and
// exact file:line diagnostics even when the malformed line sits deep
// inside a parallel chunk.
#include "store/text_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/exec/thread_pool.h"
#include "datagen/graph500.h"
#include "testing/graph_fixtures.h"

namespace ga::store {
namespace {

class TextImportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ga_text_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string PathFor(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

Graph TestGraph(bool weighted) {
  datagen::Graph500Config config;
  config.scale = 10;
  config.num_edges = 6000;
  config.weighted = weighted;
  config.seed = 5;
  auto graph = datagen::GenerateGraph500(config);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

template <typename T>
void ExpectSpanBytesEqual(std::span<const T> expected,
                          std::span<const T> actual, const char* what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  if (expected.empty()) return;  // empty spans may carry null data()
  EXPECT_EQ(std::memcmp(expected.data(), actual.data(),
                        expected.size_bytes()),
            0)
      << what;
}

void ExpectGraphsBitIdentical(const Graph& expected, const Graph& actual) {
  EXPECT_EQ(expected.directedness(), actual.directedness());
  EXPECT_EQ(expected.is_weighted(), actual.is_weighted());
  ExpectSpanBytesEqual(expected.external_ids(), actual.external_ids(),
                       "external_ids");
  ExpectSpanBytesEqual(expected.edges(), actual.edges(), "edges");
  ExpectSpanBytesEqual(expected.out_offsets(), actual.out_offsets(),
                       "out_offsets");
  ExpectSpanBytesEqual(expected.out_targets(), actual.out_targets(),
                       "out_targets");
  ExpectSpanBytesEqual(expected.out_weights(), actual.out_weights(),
                       "out_weights");
}

TEST_F(TextImportTest, ExportImportRoundTripsWeightsBitExactly) {
  // %.17g export makes even the text round trip exact — including every
  // weight bit, which the 6-digit serial writer loses.
  Graph original = TestGraph(/*weighted=*/true);
  const std::string prefix = PathFor("weighted");
  ASSERT_TRUE(ExportGraphText(original, prefix).ok());

  ImportOptions options;
  options.directedness = original.directedness();
  options.weighted = true;
  auto imported = ImportGraphText(prefix, options);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  ExpectGraphsBitIdentical(original, *imported);
}

TEST_F(TextImportTest, ChunkedParseIdenticalAtAnyThreadCount) {
  Graph original = TestGraph(/*weighted=*/false);
  const std::string prefix = PathFor("parallel");
  ASSERT_TRUE(ExportGraphText(original, prefix).ok());

  ImportOptions serial_options;
  serial_options.directedness = original.directedness();
  auto serial = ImportGraphText(prefix, serial_options);
  ASSERT_TRUE(serial.ok());
  for (int threads : {1, 2, 8}) {
    exec::ThreadPool pool(threads);
    ImportOptions options = serial_options;
    options.pool = &pool;
    auto parallel = ImportGraphText(prefix, options);
    ASSERT_TRUE(parallel.ok())
        << threads << ": " << parallel.status().ToString();
    ExpectGraphsBitIdentical(*serial, *parallel);
  }
}

TEST_F(TextImportTest, UnweightedExportMatchesSerialWriterByteForByte) {
  Graph graph = TestGraph(/*weighted=*/false);
  const std::string serial_prefix = PathFor("serial");
  const std::string parallel_prefix = PathFor("chunked");
  ASSERT_TRUE(WriteGraphFiles(graph, serial_prefix).ok());
  exec::ThreadPool pool(4);
  ASSERT_TRUE(ExportGraphText(graph, parallel_prefix, &pool).ok());
  for (const char* extension : {".v", ".e"}) {
    auto serial_text = ReadTextFile(serial_prefix + extension);
    auto parallel_text = ReadTextFile(parallel_prefix + extension);
    ASSERT_TRUE(serial_text.ok());
    ASSERT_TRUE(parallel_text.ok());
    EXPECT_EQ(*serial_text, *parallel_text) << extension;
  }
}

TEST_F(TextImportTest, ReportsExactLineNumberDeepInsideChunks) {
  // 5000 valid edge lines with one malformed line at a known position —
  // far enough in that with multiple chunks it lands mid-chunk.
  const std::string prefix = PathFor("badline");
  {
    std::ofstream vfile(prefix + ".v");
    for (int v = 0; v < 200; ++v) vfile << v << '\n';
    std::ofstream efile(prefix + ".e");
    for (int e = 1; e <= 5000; ++e) {
      if (e == 3141) {
        efile << "17 not_a_vertex\n";
      } else {
        efile << (e % 200) << ' ' << ((e * 7 + 1) % 200) << '\n';
      }
    }
  }
  for (int threads : {1, 4}) {
    exec::ThreadPool pool(threads);
    ImportOptions options;
    options.directedness = Directedness::kDirected;
    options.pool = threads > 1 ? &pool : nullptr;
    auto imported = ImportGraphText(prefix, options);
    ASSERT_FALSE(imported.ok()) << "threads " << threads;
    EXPECT_EQ(imported.status().code(), StatusCode::kIoError);
    EXPECT_NE(imported.status().message().find(".e:3141:"),
              std::string::npos)
        << imported.status().ToString();
  }
}

TEST_F(TextImportTest, ReportsVertexFileLineNumbers) {
  const std::string prefix = PathFor("badvertex");
  {
    std::ofstream vfile(prefix + ".v");
    vfile << "1\n2\n\n# comment\nbogus\n";
    std::ofstream efile(prefix + ".e");
    efile << "1 2\n";
  }
  ImportOptions options;
  options.directedness = Directedness::kDirected;
  auto imported = ImportGraphText(prefix, options);
  ASSERT_FALSE(imported.ok());
  EXPECT_NE(imported.status().message().find(".v:5:"), std::string::npos)
      << imported.status().ToString();
}

TEST_F(TextImportTest, RejectsTrailingGarbageAndMissingWeight) {
  const std::string prefix = PathFor("trailing");
  {
    std::ofstream vfile(prefix + ".v");
    vfile << "1\n2\n";
    std::ofstream efile(prefix + ".e");
    efile << "1 2 0.5 extra\n";
  }
  ImportOptions options;
  options.directedness = Directedness::kDirected;
  options.weighted = true;
  auto imported = ImportGraphText(prefix, options);
  EXPECT_FALSE(imported.ok());

  options.weighted = false;
  {
    std::ofstream efile(prefix + ".e");
    efile << "1 2 0.5\n";  // weight column on an unweighted dataset
  }
  auto unweighted = ImportGraphText(prefix, options);
  EXPECT_FALSE(unweighted.ok());
}

TEST_F(TextImportTest, MissingFilesAreCleanErrors) {
  ImportOptions options;
  auto imported = ImportGraphText(PathFor("nonexistent"), options);
  ASSERT_FALSE(imported.ok());
  EXPECT_EQ(imported.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace ga::store
