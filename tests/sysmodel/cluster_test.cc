#include "sysmodel/cluster.h"

#include <gtest/gtest.h>

#include <vector>

namespace ga::sysmodel {
namespace {

ClusterConfig BaseConfig(int machines = 1, int threads = 1) {
  ClusterConfig config;
  config.num_machines = machines;
  config.threads_per_machine = threads;
  config.serial_fraction = 0.0;
  config.hyperthread_efficiency = 0.25;
  config.barrier_seconds = 0.0;
  return config;
}

TEST(MachineSpecTest, Das5MatchesTable7) {
  MachineSpec das5 = MachineSpec::Das5();
  EXPECT_EQ(das5.cores, 16);
  EXPECT_EQ(das5.hardware_threads, 32);
  EXPECT_EQ(das5.memory_bytes, 64LL * 1024 * 1024 * 1024);
}

TEST(NetworkSpecTest, InfinibandFasterThanEthernet) {
  NetworkSpec ethernet = NetworkSpec::GigabitEthernet();
  NetworkSpec infiniband = NetworkSpec::InfinibandFdr();
  EXPECT_GT(infiniband.bandwidth_bytes_per_second,
            ethernet.bandwidth_bytes_per_second);
  EXPECT_LT(infiniband.latency_seconds, ethernet.latency_seconds);
}

TEST(ClusterModelTest, ThroughputScalesWithCores) {
  ClusterModel model(BaseConfig());
  EXPECT_DOUBLE_EQ(model.MachineThroughput(2),
                   2.0 * model.MachineThroughput(1));
  EXPECT_DOUBLE_EQ(model.MachineThroughput(16),
                   16.0 * model.MachineThroughput(1));
}

TEST(ClusterModelTest, HyperThreadsContributeFractionally) {
  ClusterModel model(BaseConfig());
  const double one_core = model.MachineThroughput(1);
  // Threads 17..32 add 0.25 of a core each.
  EXPECT_NEAR(model.MachineThroughput(32), one_core * (16.0 + 16.0 * 0.25),
              1e-6);
  // Beyond the hardware threads nothing is added.
  EXPECT_DOUBLE_EQ(model.MachineThroughput(64),
                   model.MachineThroughput(32));
}

TEST(ClusterModelTest, SuperstepUsesSlowestWorker) {
  ClusterConfig config = BaseConfig(1, 2);
  ClusterModel model(config);
  std::vector<std::uint64_t> balanced = {1000, 1000};
  std::vector<std::uint64_t> skewed = {2000, 0};
  // Same total work, but the skewed assignment is paced by one thread.
  EXPECT_GT(model.SuperstepSeconds(skewed),
            model.SuperstepSeconds(balanced));
}

TEST(ClusterModelTest, SerialFractionCapsSpeedup) {
  ClusterConfig config = BaseConfig(1, 16);
  config.serial_fraction = 0.25;  // Amdahl cap = 4
  ClusterModel model(config);
  std::vector<std::uint64_t> parallel(16, 1000);
  ClusterConfig single = BaseConfig(1, 1);
  single.serial_fraction = 0.25;
  ClusterModel one(single);
  std::vector<std::uint64_t> all = {16000};
  const double speedup =
      one.SuperstepSeconds(all) / model.SuperstepSeconds(parallel);
  EXPECT_LT(speedup, 4.0);
  EXPECT_GT(speedup, 2.5);
}

TEST(ClusterModelTest, CommunicationAddsTime) {
  ClusterConfig config = BaseConfig(2, 1);
  ClusterModel model(config);
  std::vector<std::uint64_t> work = {1000, 1000};
  std::vector<MachineComm> no_comm(2);
  std::vector<MachineComm> comm(2);
  comm[0].bytes_sent = 125'000'000;  // 1 second at 1 Gbit/s
  const double quiet = model.SuperstepSeconds(work, no_comm);
  const double loud = model.SuperstepSeconds(work, comm);
  EXPECT_NEAR(loud - quiet, 1.0, 0.01);
}

TEST(ClusterModelTest, SingleMachineIgnoresComm) {
  ClusterModel model(BaseConfig(1, 1));
  std::vector<std::uint64_t> work = {1000};
  std::vector<MachineComm> comm(1);
  comm[0].bytes_sent = 1'000'000'000;
  EXPECT_DOUBLE_EQ(model.SuperstepSeconds(work, comm),
                   model.SuperstepSeconds(work));
}

TEST(ClusterModelTest, BarrierGrowsWithMachines) {
  ClusterConfig config2 = BaseConfig(2, 1);
  config2.barrier_seconds = 1e-5;
  ClusterConfig config16 = BaseConfig(16, 1);
  config16.barrier_seconds = 1e-5;
  EXPECT_GT(ClusterModel(config16).BarrierSeconds(),
            ClusterModel(config2).BarrierSeconds());
}

TEST(ClusterModelTest, SequentialSecondsLinear) {
  ClusterModel model(BaseConfig());
  EXPECT_DOUBLE_EQ(model.SequentialSeconds(2'000'000),
                   2.0 * model.SequentialSeconds(1'000'000));
}

TEST(MemoryAccountantTest, ChargeAndRelease) {
  MemoryAccountant memory(1000, 2);
  EXPECT_TRUE(memory.Charge(0, 600, "a").ok());
  EXPECT_EQ(memory.used(0), 600);
  EXPECT_TRUE(memory.Charge(1, 900, "b").ok());
  memory.Release(0, 200);
  EXPECT_EQ(memory.used(0), 400);
  EXPECT_EQ(memory.peak(0), 600);
}

TEST(MemoryAccountantTest, OverBudgetFails) {
  MemoryAccountant memory(1000, 1);
  EXPECT_TRUE(memory.Charge(0, 800, "graph").ok());
  Status status = memory.Charge(0, 300, "buffers");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfMemory);
  // Failed charge does not consume budget.
  EXPECT_EQ(memory.used(0), 800);
}

TEST(MemoryAccountantTest, PerMachineIsolation) {
  MemoryAccountant memory(1000, 2);
  EXPECT_TRUE(memory.Charge(0, 1000, "fill").ok());
  EXPECT_TRUE(memory.Charge(1, 1000, "fill").ok());
  EXPECT_FALSE(memory.Charge(0, 1, "overflow").ok());
}

TEST(MemoryAccountantTest, ReleaseNeverUnderflows) {
  MemoryAccountant memory(1000, 1);
  memory.Release(0, 500);
  EXPECT_EQ(memory.used(0), 0);
}

TEST(MemoryAccountantTest, ResetClearsState) {
  MemoryAccountant memory(1000, 1);
  ASSERT_TRUE(memory.Charge(0, 700, "x").ok());
  memory.Reset();
  EXPECT_EQ(memory.used(0), 0);
  EXPECT_EQ(memory.peak(0), 0);
}

}  // namespace
}  // namespace ga::sysmodel
