// ga::telemetry histogram contract tests: bucket mapping round-trips,
// exact count/sum, quantile accuracy against exact sorted samples
// (within the documented 25% relative bound), concurrent recording
// merging to the same bucket totals as serial, and deterministic
// quantile extraction from merged snapshots.
#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "core/rng.h"

namespace ga::telemetry {
namespace {

TEST(HistogramTest, BucketBoundsContainTheirValues) {
  // Every probed value must land in a bucket whose [lower, upper) range
  // contains it, and the bucket ranges must tile without gaps.
  std::vector<std::int64_t> probes = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16,
                                      17, 100, 1000, 4095, 4096, 1 << 20};
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    probes.push_back(static_cast<std::int64_t>(
        rng.NextBounded(std::uint64_t{1} << 40)));
  }
  for (std::int64_t value : probes) {
    const int bucket = Histogram::BucketOf(value);
    ASSERT_GE(bucket, 0);
    ASSERT_LT(bucket, Histogram::kNumBuckets);
    EXPECT_GE(value, Histogram::BucketLowerBound(bucket)) << value;
    EXPECT_LT(value, Histogram::BucketUpperBound(bucket)) << value;
  }
  for (int b = 0; b + 1 < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketUpperBound(b),
              Histogram::BucketLowerBound(b + 1));
  }
}

TEST(HistogramTest, RelativeBucketWidthIsBounded) {
  // The 25% quantile error bound rests on this: above the unit buckets,
  // width / lower <= 1/4.
  for (int b = Histogram::kSub; b < Histogram::kNumBuckets; ++b) {
    const double lower =
        static_cast<double>(Histogram::BucketLowerBound(b));
    const double width =
        static_cast<double>(Histogram::BucketUpperBound(b)) - lower;
    EXPECT_LE(width / lower, 0.25 + 1e-12) << "bucket " << b;
  }
}

TEST(HistogramTest, CountAndSumAreExact) {
  Histogram histogram;
  std::int64_t expected_sum = 0;
  SplitMix64 rng(13);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t value =
        static_cast<std::int64_t>(rng.NextBounded(1 << 22));
    histogram.Record(value);
    expected_sum += value;
  }
  EXPECT_EQ(histogram.Count(), 5000);
  EXPECT_EQ(histogram.Sum(), expected_sum);
  // Negatives clamp to zero rather than corrupting the distribution.
  histogram.Record(-17);
  EXPECT_EQ(histogram.Count(), 5001);
  EXPECT_EQ(histogram.Sum(), expected_sum);
}

double ExactQuantile(std::vector<std::int64_t> sorted, double q) {
  // Nearest-rank, matching the histogram's definition.
  std::sort(sorted.begin(), sorted.end());
  const std::int64_t n = static_cast<std::int64_t>(sorted.size());
  std::int64_t rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(n)));
  rank = std::max<std::int64_t>(1, std::min(rank, n));
  return static_cast<double>(sorted[static_cast<std::size_t>(rank - 1)]);
}

TEST(HistogramTest, QuantilesTrackExactSortedSamplesWithinBucketWidth) {
  // Log-uniform samples over ~6 decades — the latency-like regime the
  // buckets are shaped for.
  Histogram histogram;
  std::vector<std::int64_t> samples;
  SplitMix64 rng(42);
  for (int i = 0; i < 20000; ++i) {
    const double log_value = rng.NextDouble() * 6.0;  // 1 .. 1e6
    const std::int64_t value =
        static_cast<std::int64_t>(std::pow(10.0, log_value));
    samples.push_back(value);
    histogram.Record(value);
  }
  const Histogram::Snapshot snapshot = histogram.Take();
  for (double q : {0.50, 0.90, 0.99}) {
    const double exact = ExactQuantile(samples, q);
    const double estimated = snapshot.Quantile(q);
    // Interpolation stays inside the exact value's bucket, so the error
    // is at most one bucket width: 25% relative above the unit buckets,
    // one unit below.
    const double tolerance = std::max(1.0, exact * 0.25);
    EXPECT_NEAR(estimated, exact, tolerance) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram histogram;
  EXPECT_EQ(histogram.Take().Quantile(0.5), 0.0);  // empty: defined as 0
  histogram.Record(7);
  const Histogram::Snapshot one = histogram.Take();
  // A single sample: every quantile lands in its bucket.
  EXPECT_GE(one.Quantile(0.01), Histogram::BucketLowerBound(
                                    Histogram::BucketOf(7)));
  EXPECT_LE(one.Quantile(0.99), Histogram::BucketUpperBound(
                                    Histogram::BucketOf(7)));
}

TEST(HistogramTest, ConcurrentRecordingMergesToSerialTotals) {
  // The same multiset of values recorded by 8 threads concurrently and
  // by one thread serially must produce identical bucket totals — the
  // relaxed sharded adds lose nothing.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram concurrent;
  Histogram serial;
  std::vector<std::vector<std::int64_t>> streams(kThreads);
  SplitMix64 seeder(99);
  for (int t = 0; t < kThreads; ++t) {
    SplitMix64 rng = seeder.Split(static_cast<std::uint64_t>(t));
    for (int i = 0; i < kPerThread; ++i) {
      streams[static_cast<std::size_t>(t)].push_back(
          static_cast<std::int64_t>(rng.NextBounded(1 << 24)));
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, &streams, t] {
      for (std::int64_t value : streams[static_cast<std::size_t>(t)]) {
        concurrent.Record(value);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const auto& stream : streams) {
    for (std::int64_t value : stream) serial.Record(value);
  }
  const Histogram::Snapshot a = concurrent.Take();
  const Histogram::Snapshot b = serial.Take();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  for (int bucket = 0; bucket < Histogram::kNumBuckets; ++bucket) {
    ASSERT_EQ(a.buckets[bucket], b.buckets[bucket]) << "bucket " << bucket;
  }
  // Equal buckets => equal percentiles (the deterministic-extraction
  // contract).
  EXPECT_EQ(a.Quantile(0.5), b.Quantile(0.5));
  EXPECT_EQ(a.Quantile(0.99), b.Quantile(0.99));
}

TEST(HistogramTest, SnapshotMergeAddsDistributions) {
  Histogram left;
  Histogram right;
  Histogram both;
  for (std::int64_t value : {1, 5, 9, 100}) {
    left.Record(value);
    both.Record(value);
  }
  for (std::int64_t value : {2, 5, 1000}) {
    right.Record(value);
    both.Record(value);
  }
  Histogram::Snapshot merged = left.Take();
  merged.Merge(right.Take());
  const Histogram::Snapshot expected = both.Take();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.buckets, expected.buckets);
  EXPECT_EQ(merged.Quantile(0.9), expected.Quantile(0.9));
}

TEST(CounterTest, ShardedAddsSumExactlyAcrossThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(EnabledFlagTest, DisabledRecordingIsDropped) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  SetEnabled(false);
  counter.Add(5);
  gauge.Set(5);
  histogram.Record(5);
  SetEnabled(true);
  EXPECT_EQ(counter.Value(), 0);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(histogram.Count(), 0);
  counter.Add(5);
  EXPECT_EQ(counter.Value(), 5);
}

}  // namespace
}  // namespace ga::telemetry
