// ga::telemetry registry tests: series identity, label canonicalisation,
// kind-clash isolation, and both exposition formats (Prometheus text
// 0.0.4 structure, JSON that round-trips through the repo's own parser).
#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include <string>

#include "core/json_reader.h"
#include "core/json_writer.h"

namespace ga::telemetry {
namespace {

TEST(RegistryTest, SameNameAndLabelsReturnTheSameInstrument) {
  Registry registry;
  Counter* a = registry.GetCounter("ga_test_total", {{"k", "v"}});
  Counter* b = registry.GetCounter("ga_test_total", {{"k", "v"}});
  EXPECT_EQ(a, b);
  Counter* other = registry.GetCounter("ga_test_total", {{"k", "w"}});
  EXPECT_NE(a, other);
}

TEST(RegistryTest, LabelOrderDoesNotSplitSeries) {
  Registry registry;
  Counter* a =
      registry.GetCounter("ga_test_total", {{"a", "1"}, {"b", "2"}});
  Counter* b =
      registry.GetCounter("ga_test_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, KindClashReturnsDetachedInstrument) {
  Registry registry;
  Counter* counter = registry.GetCounter("ga_test_total");
  counter->Add(3);
  // Re-registering the family under a different kind is a programming
  // error; the caller gets a usable dummy and the family is untouched.
  Gauge* dummy = registry.GetGauge("ga_test_total");
  ASSERT_NE(dummy, nullptr);
  dummy->Set(99);
  const std::string rendered = registry.RenderPrometheus();
  EXPECT_NE(rendered.find("# TYPE ga_test_total counter"),
            std::string::npos);
  EXPECT_NE(rendered.find("ga_test_total 3"), std::string::npos);
  EXPECT_EQ(rendered.find("99"), std::string::npos);
}

TEST(RegistryTest, HelpIsRetainedFromFirstNonEmptyRegistration) {
  Registry registry;
  registry.GetCounter("ga_test_total", {{"k", "a"}});
  registry.GetCounter("ga_test_total", {{"k", "b"}}, "What it counts.");
  const std::string rendered = registry.RenderPrometheus();
  EXPECT_NE(rendered.find("# HELP ga_test_total What it counts."),
            std::string::npos);
}

TEST(RegistryTest, PrometheusRenderStructure) {
  Registry registry;
  registry.GetCounter("ga_requests_total", {{"outcome", "completed"}},
                      "Finished requests.")
      ->Add(7);
  registry.GetGauge("ga_depth", {}, "Queue depth.")->Set(4);
  const std::string rendered = registry.RenderPrometheus();
  EXPECT_NE(rendered.find("# HELP ga_requests_total Finished requests.\n"),
            std::string::npos);
  EXPECT_NE(rendered.find("# TYPE ga_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(
      rendered.find("ga_requests_total{outcome=\"completed\"} 7\n"),
      std::string::npos);
  EXPECT_NE(rendered.find("# TYPE ga_depth gauge\n"), std::string::npos);
  EXPECT_NE(rendered.find("ga_depth 4\n"), std::string::npos);
}

TEST(RegistryTest, PrometheusHistogramIsCumulativeAndScaled) {
  Registry registry;
  // Record microseconds, expose seconds (unit scale 1e-6).
  Histogram* histogram = registry.GetHistogram(
      "ga_stage_seconds", {{"stage", "load"}}, "Stage latency.", 1e-6);
  histogram->Record(1000);     // 1 ms
  histogram->Record(1000);
  histogram->Record(1000000);  // 1 s
  const std::string rendered = registry.RenderPrometheus();
  EXPECT_NE(rendered.find("# TYPE ga_stage_seconds histogram"),
            std::string::npos);
  EXPECT_NE(rendered.find("ga_stage_seconds_count{stage=\"load\"} 3"),
            std::string::npos);
  // Sum: 1002000 us = 1.002 s.
  EXPECT_NE(rendered.find("ga_stage_seconds_sum{stage=\"load\"} 1.002"),
            std::string::npos);
  // The +Inf bucket always closes the series with the total count.
  EXPECT_NE(
      rendered.find("ga_stage_seconds_bucket{stage=\"load\",le=\"+Inf\"} 3"),
      std::string::npos);
  // Bucket counts are cumulative and monotone: the last finite `le`
  // line carries 3 (2 from 1ms + 1 from 1s).
  const std::size_t one_second_bucket = rendered.rfind("le=\"1.");
  ASSERT_NE(one_second_bucket, std::string::npos);
  const std::size_t line_end = rendered.find('\n', one_second_bucket);
  const std::string line =
      rendered.substr(one_second_bucket, line_end - one_second_bucket);
  EXPECT_NE(line.find("} 3"), std::string::npos) << line;
}

TEST(RegistryTest, LabelValuesAreEscaped) {
  Registry registry;
  registry.GetCounter("ga_test_total", {{"path", "a\"b\\c\nd"}})->Add(1);
  const std::string rendered = registry.RenderPrometheus();
  EXPECT_NE(rendered.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(RegistryTest, JsonRenderParsesAndCarriesQuantiles) {
  Registry registry;
  registry.GetCounter("ga_requests_total", {{"outcome", "ok"}})->Add(5);
  Histogram* histogram =
      registry.GetHistogram("ga_stage_seconds", {{"stage", "x"}}, "", 1e-6);
  for (int i = 0; i < 100; ++i) histogram->Record(2000);
  JsonWriter json;
  json.BeginObject();
  registry.RenderJson(&json);
  json.EndObject();
  auto doc = json::Parse(json.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* requests = doc->Find("ga_requests_total");
  ASSERT_NE(requests, nullptr);
  ASSERT_TRUE(requests->is_array());
  ASSERT_EQ(requests->array().size(), 1u);
  EXPECT_EQ(requests->array()[0].GetNumber("value"), 5.0);
  const json::Value* stages = doc->Find("ga_stage_seconds");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->array().size(), 1u);
  const json::Value& stage = stages->array()[0];
  EXPECT_EQ(stage.GetNumber("count"), 100.0);
  // 2000 us recorded; p50 in seconds lands within the 2ms bucket.
  EXPECT_GT(stage.GetNumber("p50"), 0.0015);
  EXPECT_LT(stage.GetNumber("p50"), 0.0030);
  const json::Value* labels = stage.Find("labels");
  ASSERT_NE(labels, nullptr);
  EXPECT_EQ(labels->GetString("stage"), "x");
}

TEST(RegistryTest, FamilyNamesAreSorted) {
  Registry registry;
  registry.GetCounter("ga_b_total");
  registry.GetCounter("ga_a_total");
  registry.GetGauge("ga_c");
  const std::vector<std::string> names = registry.FamilyNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "ga_a_total");
  EXPECT_EQ(names[1], "ga_b_total");
  EXPECT_EQ(names[2], "ga_c");
}

TEST(RegistryTest, GlobalRegistryIsAProcessSingleton) {
  EXPECT_EQ(&Registry::Global(), &Registry::Global());
}

}  // namespace
}  // namespace ga::telemetry
