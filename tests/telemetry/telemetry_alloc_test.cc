// Zero-steady-state-allocation audit for ga::telemetry (the DESIGN.md §8
// contract extended to the metrics hot path): once instruments are
// registered, recording — counter adds, gauge sets, histogram records,
// even histogram snapshots — must perform ZERO heap allocations, from
// any number of threads. Verified with a counting global operator new,
// the same interposition as tests/platforms/steady_state_alloc_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "telemetry/registry.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ga::telemetry {
namespace {

TEST(TelemetryAllocTest, RecordingAfterRegistrationNeverAllocates) {
  Registry registry;
  Counter* counter =
      registry.GetCounter("ga_alloc_test_total", {{"k", "v"}});
  Gauge* gauge = registry.GetGauge("ga_alloc_test_level");
  Histogram* histogram =
      registry.GetHistogram("ga_alloc_test_seconds", {}, "", 1e-6);

  // Warm-up covers any lazy one-time work (thread ordinal assignment).
  counter->Add(1);
  gauge->Set(1);
  histogram->Record(1);
  Histogram::Snapshot warm = histogram->Take();
  (void)warm.Quantile(0.5);

  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    counter->Add(1);
    gauge->Set(i);
    gauge->Add(1);
    histogram->Record(i);
  }
  Histogram::Snapshot snapshot = histogram->Take();
  (void)snapshot.Quantile(0.5);
  (void)snapshot.Quantile(0.99);
  (void)snapshot.MeanValue();
  const std::uint64_t after =
      g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "telemetry recording allocated on the hot path";
}

TEST(TelemetryAllocTest, ConcurrentRecordingNeverAllocates) {
  Registry registry;
  Counter* counter = registry.GetCounter("ga_alloc_mt_total");
  Histogram* histogram = registry.GetHistogram("ga_alloc_mt_seconds");

  // Warm-up on the recording threads themselves: the thread-ordinal TLS
  // assignment happens on first touch, and thread spawn itself
  // allocates — both outside the measured window.
  constexpr int kThreads = 4;
  {
    std::vector<std::thread> warmers;
    for (int t = 0; t < kThreads; ++t) {
      warmers.emplace_back([&] {
        counter->Add(1);
        histogram->Record(1);
      });
    }
    for (std::thread& thread : warmers) thread.join();
  }

  std::atomic<std::uint64_t> recorded_allocations{0};
  std::vector<std::thread> threads;
  std::atomic<bool> go{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      const std::uint64_t before =
          g_allocations.load(std::memory_order_relaxed);
      for (int i = 0; i < 50000; ++i) {
        counter->Add(1);
        histogram->Record(i & 0xFFFF);
      }
      const std::uint64_t after =
          g_allocations.load(std::memory_order_relaxed);
      // Relaxed global counter: another thread's allocations would also
      // show up here, which only makes the test stricter — there must
      // be none anywhere while the recording loops run.
      recorded_allocations.fetch_add(after - before,
                                     std::memory_order_relaxed);
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorded_allocations.load(), 0u);
  EXPECT_EQ(counter->Value(), kThreads * 50000 + kThreads);
}

}  // namespace
}  // namespace ga::telemetry
