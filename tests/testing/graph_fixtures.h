// Shared helpers for building small graphs in tests.
#ifndef GRAPHALYTICS_TESTS_TESTING_GRAPH_FIXTURES_H_
#define GRAPHALYTICS_TESTS_TESTING_GRAPH_FIXTURES_H_

#include <tuple>
#include <vector>

#include "core/graph.h"
#include "core/types.h"

namespace ga::testing {

struct WeightedEdge {
  VertexId source;
  VertexId target;
  Weight weight = 1.0;
};

/// Builds a graph from an edge list; endpoints are auto-registered, and
/// `extra_vertices` adds isolated vertices. Aborts on build failure (tests
/// construct valid graphs).
inline Graph MakeGraph(Directedness directedness,
                       const std::vector<WeightedEdge>& edges,
                       const std::vector<VertexId>& extra_vertices = {},
                       bool weighted = false) {
  GraphBuilder builder(directedness, weighted);
  for (VertexId v : extra_vertices) builder.AddVertex(v);
  for (const WeightedEdge& edge : edges) {
    builder.AddEdge(edge.source, edge.target, edge.weight);
  }
  auto result = std::move(builder).Build();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

/// Directed path 0 -> 1 -> ... -> n-1.
inline Graph MakeDirectedPath(int n) {
  std::vector<WeightedEdge> edges;
  for (int i = 0; i + 1 < n; ++i) {
    edges.push_back({i, i + 1});
  }
  return MakeGraph(Directedness::kDirected, edges);
}

/// Undirected cycle of n vertices.
inline Graph MakeUndirectedCycle(int n) {
  std::vector<WeightedEdge> edges;
  for (int i = 0; i < n; ++i) {
    edges.push_back({i, (i + 1) % n});
  }
  return MakeGraph(Directedness::kUndirected, edges);
}

/// Undirected complete graph K_n.
inline Graph MakeClique(int n) {
  std::vector<WeightedEdge> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      edges.push_back({i, j});
    }
  }
  return MakeGraph(Directedness::kUndirected, edges);
}

/// Undirected star: hub 0 connected to 1..n-1.
inline Graph MakeStar(int n) {
  std::vector<WeightedEdge> edges;
  for (int i = 1; i < n; ++i) {
    edges.push_back({0, i});
  }
  return MakeGraph(Directedness::kUndirected, edges);
}

}  // namespace ga::testing

#endif  // GRAPHALYTICS_TESTS_TESTING_GRAPH_FIXTURES_H_
