#!/usr/bin/env bash
# Crash/restart smoke (docs/ROBUSTNESS.md): kill_at_superstep delivers a
# REAL SIGKILL mid-job (exit 137 — no atexit, no destructors, exactly
# like the OOM killer), then a --resume rerun restores from the
# checkpoint the dead process left behind. The resumed run's results
# database must be byte-identical to an uninterrupted run's.
#
# Usage: tools/crash_restart_smoke.sh [path/to/graphalytics_cli]
set -u

CLI=${1:-./build/tools/graphalytics_cli}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

run() {
  "$CLI" run --datasets G22 --algorithms pr --platforms spmat \
    --jobs 2 "$@"
}

# Oracle: one clean, uninterrupted run.
run --out "$WORK/clean.json" || { echo "FAIL: clean run"; exit 1; }

# SIGKILL the process from inside at superstep 5. The checkpoint written
# after superstep 4 (cadence 1) survives the kill.
run --faults kill_at_superstep=5 --checkpoint-dir "$WORK/ckpt" --resume \
  --out "$WORK/killed.json"
status=$?
if [ "$status" -ne 137 ]; then
  echo "FAIL: expected SIGKILL exit 137, got $status"
  exit 1
fi

# Restart the same invocation: it must resume past the kill point and
# converge on the clean run's bytes.
run --faults '' --checkpoint-dir "$WORK/ckpt" --resume \
  --out "$WORK/resumed.json" || { echo "FAIL: resumed run"; exit 1; }

cmp "$WORK/clean.json" "$WORK/resumed.json" || {
  echo "FAIL: resumed run diverged from the clean run"
  exit 1
}
echo "crash/restart smoke ok: resumed run byte-identical to clean run"
