// graphalytics_cli: the benchmark driver. Three modes:
//
//   run    (default) — a configurable slice of the Graphalytics workload
//          matrix through the harness, with a JSON results database;
//          mirrors the real harness's property-driven runs ("the
//          benchmark user may select a subset of the Graphalytics
//          workload", paper Figure 1, component 2).
//   suite  — a declarative experiment plan (preset or plan file)
//          reproducing the paper's §4 evaluation: baseline EPS/EVPS,
//          strong/weak scalability, variability, and the class-L
//          renewal, emitting a paper-style text report plus a
//          machine-readable experiments.json. See docs/BENCHMARK_GUIDE.md.
//   data   — the ga::store dataset tooling: import/export LDBC
//          Graphalytics `.v`/`.e` text, generate registry datasets into
//          `.gab` snapshots, inspect/verify snapshot files, apply delta
//          batches into chained snapshots, and show chain provenance.
//   mutate — the streaming-mutation sweep (ga::mutate): evolve a dataset
//          through random delta epochs, race incremental PageRank/WCC
//          against full recomputes, verify byte-identity per epoch.
//
// Usage:
//   graphalytics_cli [run] [--platforms a,b] [--datasets X,Y]
//                    [--algorithms ...] [--machines N] [--threads N]
//                    [--repetitions N] [--jobs N] [--data-dir DIR]
//                    [--out results.json]
//   graphalytics_cli suite --plan <smoke|paper|file> [--jobs N]
//                    [--data-dir DIR] [--out experiments.json]
//                    [--report report.txt]
//   graphalytics_cli data <import|export|gen|inspect|verify|apply|log> ...
//   graphalytics_cli mutate [--dataset ID] [--rates r1,r2] [--epochs N]
//                    [--jobs N] [--out FILE.json] [--report FILE]
//
// GA_SCALE_DIVISOR / GA_SEED / GA_JOBS / GA_DATA_DIR configure the
// deployment scale, host parallelism and the persistent dataset cache.
#include <algorithm>
#include <cerrno>
#include <functional>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <filesystem>

#include <csignal>
#include <chrono>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/exec/thread_pool.h"
#include "core/json_reader.h"
#include "core/strings.h"
#include "faults/faults.h"
#include "serve/server.h"
#include "granula/chrome_trace.h"
#include "experiments/mutation_sweep.h"
#include "experiments/plan.h"
#include "experiments/suite.h"
#include "harness/report.h"
#include "harness/results_db.h"
#include "harness/runner.h"
#include "mutate/delta.h"
#include "store/chain.h"
#include "store/snapshot.h"
#include "store/text_io.h"

namespace {

using ga::SplitCsv;

void PrintUsage(std::FILE* stream) {
  std::fprintf(
      stream,
      "usage: graphalytics_cli [mode] [options]\n"
      "\n"
      "modes:\n"
      "  run    (default) run a slice of the Graphalytics workload matrix\n"
      "         and print a result table (optionally a JSON database)\n"
      "  suite  run a declarative experiment plan reproducing the paper's\n"
      "         Section 4 evaluation (baseline, scalability, variability,\n"
      "         renewal) and emit a text report + experiments.json\n"
      "  data   dataset storage tooling (ga::store):\n"
      "           import  .v/.e text -> .gab binary snapshot\n"
      "                   --in PREFIX --out FILE.gab\n"
      "                   [--undirected] [--weighted] [--jobs N]\n"
      "           export  .gab snapshot -> .v/.e text\n"
      "                   --in FILE.gab --out PREFIX [--jobs N]\n"
      "           gen     generate a registry dataset into the snapshot\n"
      "                   cache and/or a file: --dataset ID\n"
      "                   [--data-dir DIR] [--out FILE.gab] [--jobs N]\n"
      "           inspect print a snapshot's header + section table\n"
      "                   --in FILE.gab\n"
      "           verify  full integrity check (checksums + structure)\n"
      "                   --in FILE.gab\n"
      "           apply   apply a delta batch, writing a CHAINED child\n"
      "                   snapshot (records the parent's checksum + the\n"
      "                   raw ops): --in PARENT.gab --deltas FILE\n"
      "                   --out CHILD.gab [--jobs N]\n"
      "                   (delta lines: \"+ s t [w]\", \"- s t\", \"v id\")\n"
      "           log     show a snapshot's chain provenance; with\n"
      "                   --dir DIR, resolve and verify the whole\n"
      "                   ancestry by checksum: --in FILE.gab [--dir DIR]\n"
      "  mutate streaming-mutation sweep: evolve a dataset through random\n"
      "         delta epochs; incremental PageRank/WCC vs full recompute,\n"
      "         byte-identity verified per epoch (see DESIGN.md Section 12)\n"
      "  serve  overload-robust analytics daemon (docs/SERVING.md):\n"
      "         line-delimited JSON requests over a unix socket, bounded\n"
      "         admission queue with deterministic load shedding,\n"
      "         per-request deadlines and cancellation, memory-budget\n"
      "         residency with LRU eviction, graceful SIGINT/SIGTERM drain\n"
      "  top    live fleet view of a running serve daemon: queue depth,\n"
      "         in-flight jobs, per-stage latency percentiles, shed rate,\n"
      "         resident bytes vs budget (polls the stats op)\n"
      "\n"
      "run options:\n"
      "  --platforms a,b,...   platform ids (default: all six)\n"
      "  --datasets X,Y,...    dataset ids (default: R1,R2,R3,R4)\n"
      "  --algorithms a,b,...  bfs,pr,wcc,cdlp,lcc,sssp (default: bfs,pr)\n"
      "  --machines N          simulated machines (default: 1)\n"
      "  --threads N           simulated threads per machine (default: 32)\n"
      "  --repetitions N       repetitions for variability (default: 1)\n"
      "  --jobs N              host threads for real execution\n"
      "                        (default: hardware concurrency; results\n"
      "                        and simulated metrics do not depend on N)\n"
      "  --data-dir DIR        persistent dataset cache: datasets load\n"
      "                        from .gab snapshots instead of being\n"
      "                        regenerated (populated on first use)\n"
      "  --out FILE            write the results database as JSON\n"
      "  --trace FILE          deep tracing: per-superstep spans +\n"
      "                        exec-layer counters, exported as a Chrome\n"
      "                        trace-event JSON (chrome://tracing /\n"
      "                        Perfetto); outputs and simulated metrics\n"
      "                        are unchanged (docs/OBSERVABILITY.md)\n"
      "\n"
      "suite options:\n"
      "  --plan NAME|FILE      preset (smoke, paper) or plan file\n"
      "                        (default: smoke; format in\n"
      "                        docs/BENCHMARK_GUIDE.md)\n"
      "  --jobs N              host threads, as above; the suite's report\n"
      "                        and JSON are bit-identical at any N\n"
      "  --data-dir DIR        persistent dataset cache, as above\n"
      "  --out FILE            write experiments.json\n"
      "  --report FILE         also write the text report to FILE\n"
      "  --trace FILE          deep tracing across the whole plan, one\n"
      "                        process group per cell in the exported\n"
      "                        Chrome trace; adds deterministic exec\n"
      "                        counters to experiments.json\n"
      "\n"
      "mutate options:\n"
      "  --dataset ID          dataset to evolve (default: G22)\n"
      "  --rates r1,r2,...     update rates, batch = rate*|E| ops/epoch\n"
      "                        (default: 0.001,0.01,0.05)\n"
      "  --epochs N            delta epochs per rate (default: 6)\n"
      "  --iterations N        PageRank iterations (default: 20)\n"
      "  --seed N              delta-stream seed (default: 42)\n"
      "  --no-verify           skip the per-epoch recompute oracle\n"
      "  --jobs N              host threads; outputs are bit-identical\n"
      "                        at any N\n"
      "  --data-dir DIR        persistent dataset cache, as above\n"
      "  --out FILE            write the sweep JSON artifact\n"
      "  --report FILE         also write the text report to FILE\n"
      "\n"
      "serve options:\n"
      "  --socket PATH         unix socket to listen on (required)\n"
      "  --queue-depth N       admission queue capacity (default: 8);\n"
      "                        arrivals beyond it are shed with\n"
      "                        RESOURCE_EXHAUSTED + retry_after_ms\n"
      "  --workers N           concurrent executor threads (default: 1 =\n"
      "                        jobs serialized, strongest memory mode)\n"
      "  --memory-budget MB    residency budget for resident datasets in\n"
      "                        MiB; LRU eviction under pressure (0 = off)\n"
      "  --deadline-ms N       default request deadline, queue wait\n"
      "                        included (0 = none; clients may override)\n"
      "  --drain-policy P      finish|cancel: what happens to in-flight\n"
      "                        jobs on SIGINT/SIGTERM (default: finish)\n"
      "  --results FILE        append one JSON line per request (safe\n"
      "                        across concurrent writers)\n"
      "  --merge-results FILE  on drain, fold the --results log into a\n"
      "                        results-v1 JSON document at FILE\n"
      "  --metrics-jsonl FILE  append a telemetry snapshot (one JSON line:\n"
      "                        every ga_* metric) every interval\n"
      "  --metrics-interval-ms N  sampler cadence (default: 1000)\n"
      "  --jobs N              host threads per executor\n"
      "  --data-dir DIR        persistent dataset cache, as above\n"
      "\n"
      "top options:\n"
      "  --socket PATH         unix socket of the running daemon\n"
      "  --interval-ms N       poll cadence (default: 1000)\n"
      "  --frames N            exit after N frames (default: 0 = forever)\n"
      "  --no-clear            append frames instead of redrawing\n"
      "\n"
      "resilience options (run + suite, docs/ROBUSTNESS.md):\n"
      "  --faults SPEC         deterministic fault injection, e.g.\n"
      "                        crash_at_superstep=3,seed=7 (keys:\n"
      "                        crash_at_superstep, kill_at_superstep,\n"
      "                        alloc_fail_at_charge, abort_at_loop,\n"
      "                        stall_at_loop, stall_ms, corrupt_read,\n"
      "                        seed); failing cells are quarantined and\n"
      "                        the suite keeps going\n"
      "  --timeout SEC         per-attempt wall-clock timeout, enforced\n"
      "                        at superstep boundaries (0 = off)\n"
      "  --retries N           retry retryable failures up to N times\n"
      "  --backoff SEC         base backoff before retry k, doubled each\n"
      "                        retry (default 0.05)\n"
      "  --checkpoint-dir DIR  write superstep checkpoints under DIR\n"
      "  --checkpoint-cadence N  checkpoint every N supersteps (default 1)\n"
      "  --resume              restore jobs from their checkpoint when\n"
      "                        one exists; restarted jobs are\n"
      "                        byte-identical to uninterrupted ones\n"
      "\n"
      "common:\n"
      "  --help                show this help\n"
      "\n"
      "exit codes (run + suite): 0 success (or a --faults chaos run that\n"
      "completed with quarantined cells), 2 usage error, 3 benchmark\n"
      "failure, 4 crash (OOM/abort), 5 timeout, 6 infrastructure/io\n"
      "error\n"
      "\n"
      "environment: GA_SCALE_DIVISOR (default 1024), GA_SEED, GA_JOBS,\n"
      "GA_DATA_DIR, GA_FAULTS, GA_CHECKPOINT_DIR\n");
}

/// Parses --jobs values: non-negative integer, 0 = hardware concurrency.
bool ParseJobs(const char* text, int* jobs) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (*text == '\0' || end == nullptr || *end != '\0' || errno == ERANGE ||
      value < 0 || value > std::numeric_limits<int>::max()) {
    std::fprintf(stderr,
                 "--jobs requires a non-negative integer, got \"%s\" "
                 "(0 = hardware)\n",
                 text);
    return false;
  }
  *jobs = static_cast<int>(value);
  return true;
}

/// The resilience flags shared by run and suite mode, collected during
/// flag parsing and applied onto the BenchmarkConfig afterwards.
struct ResilienceArgs {
  std::string faults;
  std::string checkpoint_dir;
  double timeout = -1.0;
  double backoff = -1.0;
  int retries = -1;
  int cadence = -1;
  bool resume = false;
};

/// Consumes `arg` if it is a resilience flag. Returns true when handled.
bool ParseResilienceFlag(const std::string& arg,
                         const std::function<const char*()>& next,
                         ResilienceArgs* resilience) {
  if (arg == "--faults") {
    resilience->faults = next();
  } else if (arg == "--timeout") {
    resilience->timeout = std::atof(next());
  } else if (arg == "--retries") {
    resilience->retries = std::atoi(next());
  } else if (arg == "--backoff") {
    resilience->backoff = std::atof(next());
  } else if (arg == "--checkpoint-dir") {
    resilience->checkpoint_dir = next();
  } else if (arg == "--checkpoint-cadence") {
    resilience->cadence = std::atoi(next());
  } else if (arg == "--resume") {
    resilience->resume = true;
  } else {
    return false;
  }
  return true;
}

/// A malformed --faults spec is a usage error, rejected before any job
/// runs: the chaos-run exit-code exemption (below) would otherwise
/// report a chaos experiment that never armed as green.
bool ValidateFaultSpec(const std::string& spec) {
  if (spec.empty()) return true;
  auto plan = ga::faults::FaultPlan::Parse(spec);
  if (!plan.ok()) {
    std::fprintf(stderr, "--faults: %s\n",
                 plan.status().ToString().c_str());
    return false;
  }
  return true;
}

void ApplyResilienceArgs(const ResilienceArgs& resilience,
                         ga::harness::BenchmarkConfig* config) {
  if (!resilience.faults.empty()) config->fault_spec = resilience.faults;
  if (resilience.timeout >= 0.0) {
    config->job_timeout_seconds = resilience.timeout;
  }
  if (resilience.retries >= 0) config->max_retries = resilience.retries;
  if (resilience.backoff >= 0.0) {
    config->retry_backoff_seconds = resilience.backoff;
  }
  if (!resilience.checkpoint_dir.empty()) {
    config->checkpoint_dir = resilience.checkpoint_dir;
  }
  if (resilience.cadence >= 1) config->checkpoint_cadence = resilience.cadence;
  if (resilience.resume) config->resume = true;
}

/// Exit-code taxonomy (docs/ROBUSTNESS.md): the worst benchmark verdict
/// across the reports. Unsupported cells are paper "-" entries, not
/// failures. Infrastructure/io failures rank worst; then timeouts,
/// crashes, plain failures.
int JobExitSeverity(const ga::harness::JobReport& report) {
  switch (report.outcome) {
    case ga::harness::JobOutcome::kCompleted:
    case ga::harness::JobOutcome::kUnsupported:
      return 0;
    case ga::harness::JobOutcome::kTimedOut:
      return 5;
    case ga::harness::JobOutcome::kCrashed:
      return 4;
    case ga::harness::JobOutcome::kFailed:
      return report.failure_cause == "infrastructure" ||
                     report.failure_code == ga::StatusCode::kIoError
                 ? 6
                 : 3;
  }
  return 3;
}

/// A --faults run is a chaos experiment: injected failures quarantining
/// cells are the EXPECTED result, so they do not poison the exit code —
/// the run is green as long as the harness itself completed and emitted
/// its artifacts.
int ExitCodeForReports(const std::vector<ga::harness::JobReport>& reports,
                       bool chaos_run) {
  if (chaos_run) return 0;
  int worst = 0;
  for (const ga::harness::JobReport& report : reports) {
    worst = std::max(worst, JobExitSeverity(report));
  }
  return worst;
}

/// Writes a complete document to `path` (used for the --trace export).
bool WriteFileOrComplain(const std::string& path,
                         const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const bool ok = written == content.size() && std::fclose(file) == 0;
  if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
  return ok;
}

int RunMode(const std::vector<std::string>& args) {
  std::vector<std::string> platforms = ga::platform::AllPlatformIds();
  std::vector<std::string> datasets = {"R1", "R2", "R3", "R4"};
  std::vector<std::string> algorithms = {"bfs", "pr"};
  int machines = 1;
  int threads = 32;
  int repetitions = 1;
  int jobs = -1;  // -1: keep GA_JOBS / hardware default
  std::string out_path;
  std::string data_dir;
  std::string trace_path;
  ResilienceArgs resilience;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : "";
    };
    if (arg == "--platforms") {
      platforms = SplitCsv(next());
    } else if (arg == "--datasets") {
      datasets = SplitCsv(next());
    } else if (arg == "--algorithms") {
      algorithms = SplitCsv(next());
    } else if (arg == "--machines") {
      machines = std::atoi(next());
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--repetitions") {
      repetitions = std::atoi(next());
    } else if (arg == "--jobs") {
      if (!ParseJobs(next(), &jobs)) return 2;
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (ParseResilienceFlag(arg, next, &resilience)) {
      // handled
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  if (jobs >= 0) config.host_jobs = jobs;
  if (!data_dir.empty()) config.data_dir = data_dir;
  config.trace_enabled = !trace_path.empty();
  ApplyResilienceArgs(resilience, &config);
  if (!ValidateFaultSpec(config.fault_spec)) return 2;
  ga::harness::BenchmarkRunner runner(config);
  std::printf("host threads: %d\n",
              runner.host_pool() != nullptr
                  ? runner.host_pool()->num_threads()
                  : 1);
  if (!config.data_dir.empty()) {
    std::printf("dataset cache: %s\n", config.data_dir.c_str());
  }
  if (config.trace_enabled) {
    std::printf("deep tracing enabled -> %s\n", trace_path.c_str());
  }
  if (!config.fault_spec.empty()) {
    std::printf("fault injection armed: %s\n", config.fault_spec.c_str());
  }
  if (!config.checkpoint_dir.empty()) {
    std::printf("checkpoints -> %s (cadence %d%s)\n",
                config.checkpoint_dir.c_str(),
                std::max(config.checkpoint_cadence, 1),
                config.resume ? ", resume" : "");
  }
  ga::harness::ResultsDatabase database(config);
  std::vector<ga::harness::JobReport> reports;
  ga::granula::ChromeTraceBuilder trace_builder;
  std::size_t traced_jobs = 0;

  ga::harness::TextTable table(
      "benchmark run",
      {"platform", "dataset", "algorithm", "outcome", "T_proc", "EPS"});
  for (const std::string& dataset : datasets) {
    for (const std::string& algorithm_name : algorithms) {
      ga::Algorithm algorithm;
      if (!ga::ParseAlgorithm(algorithm_name, &algorithm)) {
        std::fprintf(stderr, "unknown algorithm %s\n",
                     algorithm_name.c_str());
        return 2;
      }
      for (const std::string& platform : platforms) {
        ga::harness::JobSpec job;
        job.platform_id = platform;
        job.dataset_id = dataset;
        job.algorithm = algorithm;
        job.num_machines = machines;
        job.threads_per_machine = threads;
        job.repetitions = repetitions;
        // Hardened execution: fault injection, timeout, bounded retry
        // and quarantine per the config (docs/ROBUSTNESS.md). Always
        // yields a report, so the matrix stays complete.
        ga::harness::JobReport report = runner.RunWithPolicy(job);
        database.Record(report);
        if (report.archive != nullptr && report.archive->valid()) {
          trace_builder.AddJob(*report.archive, platform + "/" + dataset +
                                                    "/" + algorithm_name);
          ++traced_jobs;
        }
        table.AddRow(
            {platform, dataset, algorithm_name,
             std::string(ga::harness::JobOutcomeName(report.outcome)),
             report.completed()
                 ? ga::harness::FormatSeconds(report.tproc_seconds)
                 : "-",
             report.completed()
                 ? ga::harness::FormatThroughput(report.eps)
                 : "-"});
        reports.push_back(std::move(report));
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("%zu jobs recorded, %zu completed\n", database.size(),
              database.Completed().size());

  if (!out_path.empty()) {
    ga::Status written = database.WriteJsonFile(out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 6;
    }
    std::printf("results database written to %s\n", out_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!WriteFileOrComplain(trace_path, trace_builder.Finish())) return 6;
    std::printf("chrome trace (%zu jobs) written to %s\n", traced_jobs,
                trace_path.c_str());
  }
  return ExitCodeForReports(reports, !config.fault_spec.empty());
}

int SuiteMode(const std::vector<std::string>& args) {
  std::string plan_name = "smoke";
  int jobs = -1;
  std::string out_path;
  std::string report_path;
  std::string data_dir;
  std::string trace_path;
  ResilienceArgs resilience;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : "";
    };
    if (arg == "--plan") {
      plan_name = next();
    } else if (arg == "--jobs") {
      if (!ParseJobs(next(), &jobs)) return 2;
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--report") {
      report_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (ParseResilienceFlag(arg, next, &resilience)) {
      // handled
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown suite flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  auto plan = ga::experiments::ResolvePlan(plan_name);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 2;
  }

  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  if (jobs >= 0) config.host_jobs = jobs;
  if (!data_dir.empty()) config.data_dir = data_dir;
  config.trace_enabled = !trace_path.empty();
  ApplyResilienceArgs(resilience, &config);
  if (!ValidateFaultSpec(config.fault_spec)) return 2;
  ga::harness::BenchmarkRunner runner(config);
  std::printf("host threads: %d\n",
              runner.host_pool() != nullptr
                  ? runner.host_pool()->num_threads()
                  : 1);
  if (!config.data_dir.empty()) {
    std::printf("dataset cache: %s\n", config.data_dir.c_str());
  }
  if (config.trace_enabled) {
    std::printf("deep tracing enabled -> %s\n", trace_path.c_str());
  }
  if (!config.fault_spec.empty()) {
    std::printf("fault injection armed: %s\n", config.fault_spec.c_str());
  }
  if (!config.checkpoint_dir.empty()) {
    std::printf("checkpoints -> %s (cadence %d%s)\n",
                config.checkpoint_dir.c_str(),
                std::max(config.checkpoint_cadence, 1),
                config.resume ? ", resume" : "");
  }

  auto result = ga::experiments::RunSuite(runner, *plan);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 6;
  }

  std::printf("%s", ga::experiments::RenderSuiteReport(*result).c_str());

  if (!out_path.empty()) {
    ga::Status written = ga::experiments::WriteSuiteJson(*result, out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 6;
    }
    std::printf("experiments database written to %s\n", out_path.c_str());
  }
  if (!report_path.empty()) {
    ga::Status written =
        ga::experiments::WriteSuiteReport(*result, report_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 6;
    }
    std::printf("report written to %s\n", report_path.c_str());
  }
  if (!trace_path.empty()) {
    ga::granula::ChromeTraceBuilder trace_builder;
    std::size_t traced_jobs = 0;
    for (std::size_t i = 0; i < result->reports.size(); ++i) {
      const ga::harness::JobReport& report = result->reports[i];
      if (report.archive == nullptr || !report.archive->valid()) continue;
      trace_builder.AddJob(*report.archive,
                           i < result->schedule.jobs.size()
                               ? result->schedule.jobs[i].cell_id
                               : report.spec.platform_id + "/" +
                                     report.spec.dataset_id);
      ++traced_jobs;
    }
    if (!WriteFileOrComplain(trace_path, trace_builder.Finish())) return 6;
    std::printf("chrome trace (%zu jobs) written to %s\n", traced_jobs,
                trace_path.c_str());
  }
  return ExitCodeForReports(result->reports, !config.fault_spec.empty());
}

// Shared flag state for the seven `data` submodes.
struct DataArgs {
  std::string in;
  std::string out;
  std::string dataset;
  std::string data_dir;
  std::string deltas;  // apply: delta batch file
  std::string dir;     // log: directory to resolve ancestors in
  bool undirected = false;
  bool weighted = false;
  int jobs = -1;
};

// Outcome of parsing the flags of a `data` submode: proceed, exit
// successfully (--help), or exit with a usage error.
enum class DataParse { kOk, kHelp, kError };

DataParse ParseDataArgs(const std::vector<std::string>& args,
                        DataArgs* parsed) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : "";
    };
    if (arg == "--in") {
      parsed->in = next();
    } else if (arg == "--out") {
      parsed->out = next();
    } else if (arg == "--dataset") {
      parsed->dataset = next();
    } else if (arg == "--data-dir") {
      parsed->data_dir = next();
    } else if (arg == "--deltas") {
      parsed->deltas = next();
    } else if (arg == "--dir") {
      parsed->dir = next();
    } else if (arg == "--undirected") {
      parsed->undirected = true;
    } else if (arg == "--directed") {
      parsed->undirected = false;
    } else if (arg == "--weighted") {
      parsed->weighted = true;
    } else if (arg == "--jobs") {
      if (!ParseJobs(next(), &parsed->jobs)) return DataParse::kError;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return DataParse::kHelp;
    } else {
      std::fprintf(stderr, "unknown data flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return DataParse::kError;
    }
  }
  return DataParse::kOk;
}

int Fail(const ga::Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

void PrintGraphSummary(const ga::Graph& graph) {
  std::printf("graph: %lld vertices, %lld edges, %s, %s\n",
              static_cast<long long>(graph.num_vertices()),
              static_cast<long long>(graph.num_edges()),
              ga::DirectednessName(graph.directedness()).data(),
              graph.is_weighted() ? "weighted" : "unweighted");
}

int DataMode(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "data mode requires a subcommand "
                         "(import|export|gen|inspect|verify)\n\n");
    PrintUsage(stderr);
    return 2;
  }
  const std::string sub = args[0];
  DataArgs parsed;
  switch (ParseDataArgs({args.begin() + 1, args.end()}, &parsed)) {
    case DataParse::kHelp:
      return 0;
    case DataParse::kError:
      return 2;
    case DataParse::kOk:
      break;
  }

  // The text codec and the graph build parallelise on a host pool;
  // data-mode results are byte-identical at any --jobs value. Default
  // (like run/suite): hardware concurrency.
  std::unique_ptr<ga::exec::ThreadPool> pool;
  const int pool_threads =
      parsed.jobs <= 0 ? ga::exec::ThreadPool::HardwareConcurrency()
                       : parsed.jobs;
  if (pool_threads > 1) {
    pool = std::make_unique<ga::exec::ThreadPool>(pool_threads);
  }

  if (sub == "import") {
    if (parsed.in.empty() || parsed.out.empty()) {
      std::fprintf(stderr,
                   "data import requires --in PREFIX and --out FILE.gab\n");
      return 2;
    }
    ga::store::ImportOptions options;
    options.directedness = parsed.undirected
                               ? ga::Directedness::kUndirected
                               : ga::Directedness::kDirected;
    options.weighted = parsed.weighted;
    options.pool = pool.get();
    auto graph = ga::store::ImportGraphText(parsed.in, options);
    if (!graph.ok()) return Fail(graph.status());
    PrintGraphSummary(*graph);
    ga::Status written = ga::store::WriteSnapshot(*graph, parsed.out);
    if (!written.ok()) return Fail(written);
    std::printf("snapshot written to %s\n", parsed.out.c_str());
    return 0;
  }
  if (sub == "export") {
    if (parsed.in.empty() || parsed.out.empty()) {
      std::fprintf(stderr,
                   "data export requires --in FILE.gab and --out PREFIX\n");
      return 2;
    }
    auto graph = ga::store::ReadSnapshot(parsed.in);
    if (!graph.ok()) return Fail(graph.status());
    PrintGraphSummary(*graph);
    ga::Status written =
        ga::store::ExportGraphText(*graph, parsed.out, pool.get());
    if (!written.ok()) return Fail(written);
    std::printf("text dataset written to %s.v / %s.e\n", parsed.out.c_str(),
                parsed.out.c_str());
    return 0;
  }
  if (sub == "gen") {
    ga::harness::BenchmarkConfig config =
        ga::harness::BenchmarkConfig::FromEnv();
    if (!parsed.data_dir.empty()) config.data_dir = parsed.data_dir;
    if (parsed.dataset.empty() ||
        (config.data_dir.empty() && parsed.out.empty())) {
      std::fprintf(stderr,
                   "data gen requires --dataset ID and at least one of "
                   "--data-dir DIR (or GA_DATA_DIR) / --out FILE.gab\n");
      return 2;
    }
    ga::harness::DatasetRegistry registry(config);  // Load fills the cache
    registry.set_host_pool(pool.get());
    auto graph = registry.Load(parsed.dataset);
    if (!graph.ok()) return Fail(graph.status());
    PrintGraphSummary(**graph);
    if (!config.data_dir.empty()) {
      // Load treats cache stores as best-effort; gen's whole purpose is
      // the cached file, so confirm it actually landed.
      auto snapshot_path = registry.SnapshotPathFor(parsed.dataset);
      if (!snapshot_path.ok()) return Fail(snapshot_path.status());
      ga::Status cached = ga::store::VerifySnapshot(*snapshot_path);
      if (!cached.ok()) return Fail(cached);
      std::printf("snapshot cached at %s\n", snapshot_path->c_str());
    }
    if (!parsed.out.empty()) {
      ga::Status written = ga::store::WriteSnapshot(**graph, parsed.out);
      if (!written.ok()) return Fail(written);
      std::printf("snapshot written to %s\n", parsed.out.c_str());
    }
    return 0;
  }
  if (sub == "inspect") {
    if (parsed.in.empty()) {
      std::fprintf(stderr, "data inspect requires --in FILE.gab\n");
      return 2;
    }
    auto info = ga::store::InspectSnapshot(parsed.in);
    if (!info.ok()) return Fail(info.status());
    const auto& header = info->header;
    std::printf("%s: .gab snapshot version %u\n", parsed.in.c_str(),
                header.version);
    std::printf("  %llu vertices, %llu edges, %s, %s\n",
                static_cast<unsigned long long>(header.num_vertices),
                static_cast<unsigned long long>(header.num_edges),
                (header.flags & ga::store::kFlagDirected) != 0
                    ? "directed"
                    : "undirected",
                (header.flags & ga::store::kFlagWeighted) != 0
                    ? "weighted"
                    : "unweighted");
    std::printf("  max out-degree %llu, max in-degree %llu, %llu bytes\n",
                static_cast<unsigned long long>(header.max_out_degree),
                static_cast<unsigned long long>(header.max_in_degree),
                static_cast<unsigned long long>(info->file_size));
    std::printf("  %-14s %12s %12s %18s\n", "section", "offset", "bytes",
                "checksum");
    for (const auto& section : info->sections) {
      std::printf("  %-14s %12llu %12llu   %016llx\n",
                  ga::store::SectionKindName(
                      static_cast<ga::store::SectionKind>(section.kind))
                      .data(),
                  static_cast<unsigned long long>(section.offset),
                  static_cast<unsigned long long>(section.size_bytes),
                  static_cast<unsigned long long>(section.checksum));
    }
    return 0;
  }
  if (sub == "verify") {
    if (parsed.in.empty()) {
      std::fprintf(stderr, "data verify requires --in FILE.gab\n");
      return 2;
    }
    ga::Status verified = ga::store::VerifySnapshot(parsed.in);
    if (!verified.ok()) return Fail(verified);
    std::printf("%s: OK (checksums and structure verified)\n",
                parsed.in.c_str());
    return 0;
  }
  if (sub == "apply") {
    if (parsed.in.empty() || parsed.deltas.empty() || parsed.out.empty()) {
      std::fprintf(stderr,
                   "data apply requires --in PARENT.gab --deltas FILE "
                   "--out CHILD.gab\n");
      return 2;
    }
    auto parent = ga::store::ReadSnapshot(parsed.in);
    if (!parent.ok()) return Fail(parent.status());
    auto parent_checksum = ga::store::SnapshotChecksum(parsed.in);
    if (!parent_checksum.ok()) return Fail(parent_checksum.status());
    auto parent_record = ga::store::ReadChainRecord(parsed.in);
    if (!parent_record.ok()) return Fail(parent_record.status());
    const std::uint64_t epoch =
        parent_record->has_value() ? (*parent_record)->epoch + 1 : 1;

    auto batch = ga::mutate::LoadDeltaFile(parsed.deltas);
    if (!batch.ok()) return Fail(batch.status());
    auto applied = ga::mutate::ApplyDeltas(*parent, *batch, pool.get());
    if (!applied.ok()) return Fail(applied.status());
    PrintGraphSummary(applied->graph);
    const auto& stats = applied->stats;
    std::printf("applied %zu ops: +%lld edges, -%lld edges, "
                "%lld upserts, %lld missing deletes, +%lld vertices\n",
                batch->ops.size(),
                static_cast<long long>(stats.inserted_edges),
                static_cast<long long>(stats.deleted_edges),
                static_cast<long long>(stats.redundant_inserts),
                static_cast<long long>(stats.missing_deletes),
                static_cast<long long>(stats.added_vertices));
    ga::Status written = ga::store::WriteChainedSnapshot(
        applied->graph, parsed.out, *parent_checksum, epoch, *batch);
    if (!written.ok()) return Fail(written);
    std::printf("chained snapshot (epoch %llu) written to %s\n",
                static_cast<unsigned long long>(epoch), parsed.out.c_str());
    return 0;
  }
  if (sub == "log") {
    if (parsed.in.empty()) {
      std::fprintf(stderr, "data log requires --in FILE.gab [--dir DIR]\n");
      return 2;
    }
    auto print_link = [](const std::string& path,
                         std::uint64_t checksum,
                         const std::optional<ga::store::ChainRecord>&
                             record) {
      if (record.has_value()) {
        std::printf("%s  checksum %016llx  epoch %llu  parent %016llx  "
                    "%zu ops\n",
                    path.c_str(),
                    static_cast<unsigned long long>(checksum),
                    static_cast<unsigned long long>(record->epoch),
                    static_cast<unsigned long long>(
                        record->parent_checksum),
                    record->deltas.ops.size());
      } else {
        std::printf("%s  checksum %016llx  (root: unchained snapshot)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(checksum));
      }
    };
    auto checksum = ga::store::SnapshotChecksum(parsed.in);
    if (!checksum.ok()) return Fail(checksum.status());
    auto record = ga::store::ReadChainRecord(parsed.in);
    if (!record.ok()) return Fail(record.status());
    if (parsed.dir.empty()) {
      print_link(parsed.in, *checksum, *record);
      return 0;
    }
    // Resolve ancestry inside --dir by checksum, then verify the chain
    // end-to-end (parent links + delta replay, bit-for-bit).
    std::map<std::uint64_t, std::string> by_checksum;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(parsed.dir, ec)) {
      if (!entry.is_regular_file() ||
          entry.path().extension() != ".gab") {
        continue;
      }
      auto entry_checksum =
          ga::store::SnapshotChecksum(entry.path().string());
      if (entry_checksum.ok()) {
        by_checksum[*entry_checksum] = entry.path().string();
      }
    }
    if (ec) {
      std::fprintf(stderr, "cannot scan %s: %s\n", parsed.dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
    std::vector<std::string> chain = {parsed.in};
    auto walk = *record;
    while (walk.has_value()) {
      auto parent_it = by_checksum.find(walk->parent_checksum);
      if (parent_it == by_checksum.end()) {
        std::fprintf(stderr,
                     "parent %016llx not found in %s (chain truncated)\n",
                     static_cast<unsigned long long>(
                         walk->parent_checksum),
                     parsed.dir.c_str());
        return 1;
      }
      chain.push_back(parent_it->second);
      auto parent_rec = ga::store::ReadChainRecord(parent_it->second);
      if (!parent_rec.ok()) return Fail(parent_rec.status());
      walk = *parent_rec;
    }
    // Root-first for replay and display.
    std::reverse(chain.begin(), chain.end());
    for (const std::string& path : chain) {
      auto link_checksum = ga::store::SnapshotChecksum(path);
      if (!link_checksum.ok()) return Fail(link_checksum.status());
      auto link_record = ga::store::ReadChainRecord(path);
      if (!link_record.ok()) return Fail(link_record.status());
      print_link(path, *link_checksum, *link_record);
    }
    auto head = ga::store::ReplayChain(chain, pool.get());
    if (!head.ok()) return Fail(head.status());
    std::printf("chain verified: %zu snapshots, replay reproduces the "
                "head bit-for-bit\n",
                chain.size());
    return 0;
  }
  std::fprintf(stderr,
               "unknown data subcommand \"%s\" "
               "(valid: import, export, gen, inspect, verify, apply, "
               "log)\n\n",
               sub.c_str());
  PrintUsage(stderr);
  return 2;
}

int MutateMode(const std::vector<std::string>& args) {
  ga::experiments::MutationSweepConfig sweep;
  int jobs = -1;
  std::string data_dir;
  std::string out_path;
  std::string report_path;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : "";
    };
    if (arg == "--dataset") {
      sweep.dataset_id = next();
    } else if (arg == "--rates") {
      sweep.update_rates.clear();
      for (const std::string& rate : SplitCsv(next())) {
        const double value = std::atof(rate.c_str());
        if (value <= 0.0) {
          std::fprintf(stderr, "--rates needs positive numbers, got %s\n",
                       rate.c_str());
          return 2;
        }
        sweep.update_rates.push_back(value);
      }
      if (sweep.update_rates.empty()) {
        std::fprintf(stderr, "--rates needs at least one rate\n");
        return 2;
      }
    } else if (arg == "--epochs") {
      sweep.epochs = std::atoi(next());
    } else if (arg == "--iterations") {
      sweep.pagerank_iterations = std::atoi(next());
    } else if (arg == "--seed") {
      sweep.seed = static_cast<std::uint64_t>(
          std::strtoull(next(), nullptr, 10));
    } else if (arg == "--no-verify") {
      sweep.verify = false;
    } else if (arg == "--jobs") {
      if (!ParseJobs(next(), &jobs)) return 2;
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--report") {
      report_path = next();
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown mutate flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  if (jobs >= 0) config.host_jobs = jobs;
  if (!data_dir.empty()) config.data_dir = data_dir;
  sweep.pagerank_iterations = std::max(sweep.pagerank_iterations, 0);

  std::unique_ptr<ga::exec::ThreadPool> pool;
  const int pool_threads =
      config.host_jobs <= 0 ? ga::exec::ThreadPool::HardwareConcurrency()
                            : config.host_jobs;
  if (pool_threads > 1) {
    pool = std::make_unique<ga::exec::ThreadPool>(pool_threads);
  }
  std::printf("host threads: %d\n", pool != nullptr ? pool_threads : 1);

  ga::harness::DatasetRegistry registry(config);
  registry.set_host_pool(pool.get());
  auto result =
      ga::experiments::RunMutationSweep(sweep, registry, pool.get());
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const std::string report = ga::experiments::RenderMutationReport(*result);
  std::printf("%s", report.c_str());
  if (!out_path.empty()) {
    if (!WriteFileOrComplain(out_path,
                             ga::experiments::MutationSweepToJson(*result))) {
      return 1;
    }
    std::printf("sweep JSON written to %s\n", out_path.c_str());
  }
  if (!report_path.empty()) {
    if (!WriteFileOrComplain(report_path, report)) return 1;
    std::printf("report written to %s\n", report_path.c_str());
  }
  return 0;
}

// The serving daemon's drain trigger: the signal handler must be
// async-signal-safe, so it only calls RequestDrain (an atomic store plus
// a self-pipe write).
ga::serve::Server* g_serve_server = nullptr;

void ServeSignalHandler(int) {
  if (g_serve_server != nullptr) g_serve_server->RequestDrain();
}

int ServeMode(const std::vector<std::string>& args) {
  ga::serve::ServeOptions options;
  int jobs = -1;
  std::string data_dir;
  std::string merge_path;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : "";
    };
    if (arg == "--socket") {
      options.socket_path = next();
    } else if (arg == "--queue-depth") {
      options.queue_capacity = std::atoi(next());
      if (options.queue_capacity < 1) {
        std::fprintf(stderr, "--queue-depth requires a positive integer\n");
        return 2;
      }
    } else if (arg == "--workers") {
      options.workers = std::atoi(next());
      if (options.workers < 1) {
        std::fprintf(stderr, "--workers requires a positive integer\n");
        return 2;
      }
    } else if (arg == "--memory-budget") {
      const long mib = std::atol(next());
      if (mib < 0) {
        std::fprintf(stderr, "--memory-budget requires MiB >= 0\n");
        return 2;
      }
      options.memory_budget_bytes = static_cast<std::int64_t>(mib) << 20;
    } else if (arg == "--deadline-ms") {
      options.default_deadline_ms = std::atof(next());
      if (options.default_deadline_ms < 0.0) {
        std::fprintf(stderr, "--deadline-ms requires a value >= 0\n");
        return 2;
      }
    } else if (arg == "--drain-policy") {
      const std::string policy = next();
      if (policy == "finish") {
        options.drain = ga::serve::ServeOptions::DrainPolicy::kFinish;
      } else if (policy == "cancel") {
        options.drain = ga::serve::ServeOptions::DrainPolicy::kCancel;
      } else {
        std::fprintf(stderr,
                     "--drain-policy must be finish or cancel, got \"%s\"\n",
                     policy.c_str());
        return 2;
      }
    } else if (arg == "--results") {
      options.results_jsonl = next();
    } else if (arg == "--merge-results") {
      merge_path = next();
    } else if (arg == "--metrics-jsonl") {
      options.metrics_jsonl = next();
    } else if (arg == "--metrics-interval-ms") {
      options.metrics_interval_ms = std::atoi(next());
      if (options.metrics_interval_ms < 1) {
        std::fprintf(stderr,
                     "--metrics-interval-ms requires a positive integer\n");
        return 2;
      }
    } else if (arg == "--jobs") {
      if (!ParseJobs(next(), &jobs)) return 2;
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown serve flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "serve requires --socket PATH\n\n");
    PrintUsage(stderr);
    return 2;
  }
  if (!merge_path.empty() && options.results_jsonl.empty()) {
    std::fprintf(stderr, "--merge-results requires --results FILE\n");
    return 2;
  }

  options.bench = ga::harness::BenchmarkConfig::FromEnv();
  if (jobs >= 0) options.bench.host_jobs = jobs;
  if (!data_dir.empty()) options.bench.data_dir = data_dir;

  ga::serve::Server server(options);
  ga::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 6;
  }
  g_serve_server = &server;
  struct sigaction action {};
  action.sa_handler = ServeSignalHandler;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  std::printf("serving on %s (queue %d, workers %d, budget %lld MiB, "
              "deadline %.0f ms, drain %s)\n",
              options.socket_path.c_str(), options.queue_capacity,
              options.workers,
              static_cast<long long>(options.memory_budget_bytes >> 20),
              options.default_deadline_ms,
              options.drain == ga::serve::ServeOptions::DrainPolicy::kFinish
                  ? "finish"
                  : "cancel");
  std::fflush(stdout);

  ga::Status drained = server.ServeUntilDrained();
  g_serve_server = nullptr;
  if (!drained.ok()) {
    std::fprintf(stderr, "%s\n", drained.ToString().c_str());
    return 6;
  }
  const ga::serve::ServeStats stats = server.StatsSnapshot();
  std::printf("drained: %lld submitted, %lld completed, %lld shed, "
              "%lld cancelled, %lld timed-out, %lld failed\n",
              static_cast<long long>(stats.queue.submitted),
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.queue.shed_arrivals +
                                     stats.queue.shed_victims),
              static_cast<long long>(stats.cancelled),
              static_cast<long long>(stats.timed_out),
              static_cast<long long>(stats.failed));
  if (!merge_path.empty()) {
    auto merged = ga::harness::MergeJsonl(options.results_jsonl,
                                          options.bench);
    if (!merged.ok()) {
      std::fprintf(stderr, "%s\n", merged.status().ToString().c_str());
      return 6;
    }
    if (!WriteFileOrComplain(merge_path, *merged)) return 6;
    std::printf("merged results written to %s\n", merge_path.c_str());
  }
  return 0;
}


// ---------------------------------------------------------------------------
// top mode: a live fleet view of a running daemon. A thin client: each
// frame opens the unix socket, sends {"op":"stats"}, renders the JSON
// snapshot, disconnects. Reconnect-per-frame keeps the client stateless
// and survives daemon restarts between frames.

/// One stats round-trip; empty string on any socket failure.
std::string FetchStatsLine(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return "";
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return "";
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "{\"op\":\"stats\"}\n";
  std::size_t written = 0;
  while (written < request.size()) {
    const ssize_t n = ::send(fd, request.data() + written,
                             request.size() - written, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    written += static_cast<std::size_t>(n);
  }
  std::string line;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    line.append(chunk, static_cast<std::size_t>(n));
    const std::size_t newline = line.find('\n');
    if (newline != std::string::npos) {
      line.resize(newline);
      break;
    }
  }
  ::close(fd);
  return line;
}

void RenderStageRow(const ga::json::Value& stages, const char* name) {
  const ga::json::Value* stage = stages.Find(name);
  if (stage == nullptr) return;
  std::printf("  %-11s %8.0f %9.2f %9.2f %9.2f %9.2f\n", name,
              stage->GetNumber("count"), stage->GetNumber("mean_ms"),
              stage->GetNumber("p50_ms"), stage->GetNumber("p90_ms"),
              stage->GetNumber("p99_ms"));
}

int TopMode(const std::vector<std::string>& args) {
  std::string socket_path;
  int interval_ms = 1000;
  long frames = 0;
  bool clear_screen = true;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : "";
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--interval-ms") {
      interval_ms = std::atoi(next());
      if (interval_ms < 1) {
        std::fprintf(stderr, "--interval-ms requires a positive integer\n");
        return 2;
      }
    } else if (arg == "--frames") {
      frames = std::atol(next());
      if (frames < 0) {
        std::fprintf(stderr, "--frames requires an integer >= 0\n");
        return 2;
      }
    } else if (arg == "--no-clear") {
      clear_screen = false;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown top flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "top requires --socket PATH\n\n");
    PrintUsage(stderr);
    return 2;
  }

  long frame = 0;
  int consecutive_failures = 0;
  for (;;) {
    const std::string line = FetchStatsLine(socket_path);
    if (line.empty()) {
      if (++consecutive_failures >= 3) {
        std::fprintf(stderr, "cannot reach daemon at %s\n",
                     socket_path.c_str());
        return 6;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    consecutive_failures = 0;
    auto doc = ga::json::Parse(line);
    const ga::json::Value* stats =
        doc.ok() ? doc->Find("stats") : nullptr;
    if (stats == nullptr) {
      std::fprintf(stderr, "malformed stats response: %s\n", line.c_str());
      return 6;
    }
    ++frame;
    if (clear_screen) std::printf("\033[H\033[2J");
    const double submitted = stats->GetNumber("submitted");
    const double shed = stats->GetNumber("shed_arrivals") +
                        stats->GetNumber("shed_victims");
    const double resident_mib =
        stats->GetNumber("resident_bytes") / (1024.0 * 1024.0);
    const double budget_mib =
        stats->GetNumber("memory_budget_bytes") / (1024.0 * 1024.0);
    std::printf("ga top — %s  (frame %ld, every %d ms)\n",
                socket_path.c_str(), frame, interval_ms);
    std::printf(
        "queue    depth %.0f/%.0f   inflight %.0f/%.0f workers   "
        "service ewma %.1f ms\n",
        stats->GetNumber("queue_depth"), stats->GetNumber("queue_capacity"),
        stats->GetNumber("inflight"), stats->GetNumber("workers"),
        stats->GetNumber("service_ewma_ms"));
    std::printf(
        "requests submitted %.0f  completed %.0f  shed %.0f (%.1f%%)  "
        "failed %.0f  cancelled %.0f  timed-out %.0f\n",
        submitted, stats->GetNumber("completed"), shed,
        submitted > 0 ? 100.0 * shed / submitted : 0.0,
        stats->GetNumber("failed"), stats->GetNumber("cancelled"),
        stats->GetNumber("timed_out"));
    if (budget_mib > 0) {
      std::printf(
          "memory   resident %.1f MiB / %.1f MiB (%.0f%%)   hits %.0f  "
          "misses %.0f  evictions %.0f\n",
          resident_mib, budget_mib,
          100.0 * resident_mib / budget_mib,
          stats->GetNumber("residency_hits"),
          stats->GetNumber("residency_misses"),
          stats->GetNumber("evictions"));
    } else {
      std::printf(
          "memory   resident %.1f MiB (no budget)   hits %.0f  "
          "misses %.0f  evictions %.0f\n",
          resident_mib, stats->GetNumber("residency_hits"),
          stats->GetNumber("residency_misses"),
          stats->GetNumber("evictions"));
    }
    const ga::json::Value* stages = stats->Find("stages");
    if (stages != nullptr) {
      std::printf("  %-11s %8s %9s %9s %9s %9s\n", "stage", "count",
                  "mean ms", "p50 ms", "p90 ms", "p99 ms");
      RenderStageRow(*stages, "queue_wait");
      RenderStageRow(*stages, "load");
      RenderStageRow(*stages, "execute");
      RenderStageRow(*stages, "serialize");
    }
    std::fflush(stdout);
    if (frames > 0 && frame >= frames) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Normalise "--flag=value" to "--flag value" so both spellings work in
  // every mode.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::size_t equals = arg.find('=');
      if (equals != std::string::npos) {
        args.push_back(arg.substr(0, equals));
        args.push_back(arg.substr(equals + 1));
        continue;
      }
    }
    args.push_back(arg);
  }

  // The first non-flag argument selects the mode; bare flags default to
  // the legacy "run" mode.
  if (!args.empty() && args[0].rfind("-", 0) != 0) {
    const std::string mode = args[0];
    args.erase(args.begin());
    if (mode == "run") return RunMode(args);
    if (mode == "suite") return SuiteMode(args);
    if (mode == "data") return DataMode(args);
    if (mode == "mutate") return MutateMode(args);
    if (mode == "serve") return ServeMode(args);
    if (mode == "top") return TopMode(args);
    if (mode == "help") {
      PrintUsage(stdout);
      return 0;
    }
    std::fprintf(stderr,
                 "unknown mode \"%s\" (valid modes: run, suite, data, "
                 "mutate, serve, top)\n\n",
                 mode.c_str());
    PrintUsage(stderr);
    return 2;
  }
  return RunMode(args);
}
