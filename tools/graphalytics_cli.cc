// graphalytics_cli: the benchmark driver. Two modes:
//
//   run    (default) — a configurable slice of the Graphalytics workload
//          matrix through the harness, with a JSON results database;
//          mirrors the real harness's property-driven runs ("the
//          benchmark user may select a subset of the Graphalytics
//          workload", paper Figure 1, component 2).
//   suite  — a declarative experiment plan (preset or plan file)
//          reproducing the paper's §4 evaluation: baseline EPS/EVPS,
//          strong/weak scalability, variability, and the class-L
//          renewal, emitting a paper-style text report plus a
//          machine-readable experiments.json. See docs/BENCHMARK_GUIDE.md.
//
// Usage:
//   graphalytics_cli [run] [--platforms a,b] [--datasets X,Y]
//                    [--algorithms ...] [--machines N] [--threads N]
//                    [--repetitions N] [--jobs N] [--out results.json]
//   graphalytics_cli suite --plan <smoke|paper|file> [--jobs N]
//                    [--out experiments.json] [--report report.txt]
//
// GA_SCALE_DIVISOR / GA_SEED / GA_JOBS configure the deployment scale and
// host parallelism in both modes.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/exec/thread_pool.h"
#include "core/strings.h"
#include "experiments/plan.h"
#include "experiments/suite.h"
#include "harness/report.h"
#include "harness/results_db.h"
#include "harness/runner.h"

namespace {

using ga::SplitCsv;

void PrintUsage(std::FILE* stream) {
  std::fprintf(
      stream,
      "usage: graphalytics_cli [mode] [options]\n"
      "\n"
      "modes:\n"
      "  run    (default) run a slice of the Graphalytics workload matrix\n"
      "         and print a result table (optionally a JSON database)\n"
      "  suite  run a declarative experiment plan reproducing the paper's\n"
      "         Section 4 evaluation (baseline, scalability, variability,\n"
      "         renewal) and emit a text report + experiments.json\n"
      "\n"
      "run options:\n"
      "  --platforms a,b,...   platform ids (default: all six)\n"
      "  --datasets X,Y,...    dataset ids (default: R1,R2,R3,R4)\n"
      "  --algorithms a,b,...  bfs,pr,wcc,cdlp,lcc,sssp (default: bfs,pr)\n"
      "  --machines N          simulated machines (default: 1)\n"
      "  --threads N           simulated threads per machine (default: 32)\n"
      "  --repetitions N       repetitions for variability (default: 1)\n"
      "  --jobs N              host threads for real execution\n"
      "                        (default: hardware concurrency; results\n"
      "                        and simulated metrics do not depend on N)\n"
      "  --out FILE            write the results database as JSON\n"
      "\n"
      "suite options:\n"
      "  --plan NAME|FILE      preset (smoke, paper) or plan file\n"
      "                        (default: smoke; format in\n"
      "                        docs/BENCHMARK_GUIDE.md)\n"
      "  --jobs N              host threads, as above; the suite's report\n"
      "                        and JSON are bit-identical at any N\n"
      "  --out FILE            write experiments.json\n"
      "  --report FILE         also write the text report to FILE\n"
      "\n"
      "common:\n"
      "  --help                show this help\n"
      "\n"
      "environment: GA_SCALE_DIVISOR (default 1024), GA_SEED, GA_JOBS\n");
}

/// Parses --jobs values: non-negative integer, 0 = hardware concurrency.
bool ParseJobs(const char* text, int* jobs) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (*text == '\0' || end == nullptr || *end != '\0' || errno == ERANGE ||
      value < 0 || value > std::numeric_limits<int>::max()) {
    std::fprintf(stderr,
                 "--jobs requires a non-negative integer, got \"%s\" "
                 "(0 = hardware)\n",
                 text);
    return false;
  }
  *jobs = static_cast<int>(value);
  return true;
}

int RunMode(const std::vector<std::string>& args) {
  std::vector<std::string> platforms = ga::platform::AllPlatformIds();
  std::vector<std::string> datasets = {"R1", "R2", "R3", "R4"};
  std::vector<std::string> algorithms = {"bfs", "pr"};
  int machines = 1;
  int threads = 32;
  int repetitions = 1;
  int jobs = -1;  // -1: keep GA_JOBS / hardware default
  std::string out_path;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : "";
    };
    if (arg == "--platforms") {
      platforms = SplitCsv(next());
    } else if (arg == "--datasets") {
      datasets = SplitCsv(next());
    } else if (arg == "--algorithms") {
      algorithms = SplitCsv(next());
    } else if (arg == "--machines") {
      machines = std::atoi(next());
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--repetitions") {
      repetitions = std::atoi(next());
    } else if (arg == "--jobs") {
      if (!ParseJobs(next(), &jobs)) return 2;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  if (jobs >= 0) config.host_jobs = jobs;
  ga::harness::BenchmarkRunner runner(config);
  std::printf("host threads: %d\n",
              runner.host_pool() != nullptr
                  ? runner.host_pool()->num_threads()
                  : 1);
  ga::harness::ResultsDatabase database(config);

  ga::harness::TextTable table(
      "benchmark run",
      {"platform", "dataset", "algorithm", "outcome", "T_proc", "EPS"});
  for (const std::string& dataset : datasets) {
    for (const std::string& algorithm_name : algorithms) {
      ga::Algorithm algorithm;
      if (!ga::ParseAlgorithm(algorithm_name, &algorithm)) {
        std::fprintf(stderr, "unknown algorithm %s\n",
                     algorithm_name.c_str());
        return 2;
      }
      for (const std::string& platform : platforms) {
        ga::harness::JobSpec job;
        job.platform_id = platform;
        job.dataset_id = dataset;
        job.algorithm = algorithm;
        job.num_machines = machines;
        job.threads_per_machine = threads;
        job.repetitions = repetitions;
        auto report = runner.Run(job);
        if (!report.ok()) {
          std::fprintf(stderr, "%s/%s/%s: %s\n", platform.c_str(),
                       dataset.c_str(), algorithm_name.c_str(),
                       report.status().ToString().c_str());
          continue;
        }
        database.Record(*report);
        table.AddRow(
            {platform, dataset, algorithm_name,
             std::string(ga::harness::JobOutcomeName(report->outcome)),
             report->completed()
                 ? ga::harness::FormatSeconds(report->tproc_seconds)
                 : "-",
             report->completed()
                 ? ga::harness::FormatThroughput(report->eps)
                 : "-"});
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("%zu jobs recorded, %zu completed\n", database.size(),
              database.Completed().size());

  if (!out_path.empty()) {
    ga::Status written = database.WriteJsonFile(out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("results database written to %s\n", out_path.c_str());
  }
  return 0;
}

int SuiteMode(const std::vector<std::string>& args) {
  std::string plan_name = "smoke";
  int jobs = -1;
  std::string out_path;
  std::string report_path;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : "";
    };
    if (arg == "--plan") {
      plan_name = next();
    } else if (arg == "--jobs") {
      if (!ParseJobs(next(), &jobs)) return 2;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--report") {
      report_path = next();
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown suite flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  auto plan = ga::experiments::ResolvePlan(plan_name);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 2;
  }

  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  if (jobs >= 0) config.host_jobs = jobs;
  ga::harness::BenchmarkRunner runner(config);
  std::printf("host threads: %d\n",
              runner.host_pool() != nullptr
                  ? runner.host_pool()->num_threads()
                  : 1);

  auto result = ga::experiments::RunSuite(runner, *plan);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%s", ga::experiments::RenderSuiteReport(*result).c_str());

  if (!out_path.empty()) {
    ga::Status written = ga::experiments::WriteSuiteJson(*result, out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("experiments database written to %s\n", out_path.c_str());
  }
  if (!report_path.empty()) {
    ga::Status written =
        ga::experiments::WriteSuiteReport(*result, report_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Normalise "--flag=value" to "--flag value" so both spellings work in
  // every mode.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::size_t equals = arg.find('=');
      if (equals != std::string::npos) {
        args.push_back(arg.substr(0, equals));
        args.push_back(arg.substr(equals + 1));
        continue;
      }
    }
    args.push_back(arg);
  }

  // The first non-flag argument selects the mode; bare flags default to
  // the legacy "run" mode.
  if (!args.empty() && args[0].rfind("-", 0) != 0) {
    const std::string mode = args[0];
    args.erase(args.begin());
    if (mode == "run") return RunMode(args);
    if (mode == "suite") return SuiteMode(args);
    if (mode == "help") {
      PrintUsage(stdout);
      return 0;
    }
    std::fprintf(stderr,
                 "unknown mode \"%s\" (valid modes: run, suite)\n\n",
                 mode.c_str());
    PrintUsage(stderr);
    return 2;
  }
  return RunMode(args);
}
