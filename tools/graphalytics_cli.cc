// graphalytics_cli: the benchmark driver. Three modes:
//
//   run    (default) — a configurable slice of the Graphalytics workload
//          matrix through the harness, with a JSON results database;
//          mirrors the real harness's property-driven runs ("the
//          benchmark user may select a subset of the Graphalytics
//          workload", paper Figure 1, component 2).
//   suite  — a declarative experiment plan (preset or plan file)
//          reproducing the paper's §4 evaluation: baseline EPS/EVPS,
//          strong/weak scalability, variability, and the class-L
//          renewal, emitting a paper-style text report plus a
//          machine-readable experiments.json. See docs/BENCHMARK_GUIDE.md.
//   data   — the ga::store dataset tooling: import/export LDBC
//          Graphalytics `.v`/`.e` text, generate registry datasets into
//          `.gab` snapshots, and inspect/verify snapshot files.
//
// Usage:
//   graphalytics_cli [run] [--platforms a,b] [--datasets X,Y]
//                    [--algorithms ...] [--machines N] [--threads N]
//                    [--repetitions N] [--jobs N] [--data-dir DIR]
//                    [--out results.json]
//   graphalytics_cli suite --plan <smoke|paper|file> [--jobs N]
//                    [--data-dir DIR] [--out experiments.json]
//                    [--report report.txt]
//   graphalytics_cli data <import|export|gen|inspect|verify> ...
//
// GA_SCALE_DIVISOR / GA_SEED / GA_JOBS / GA_DATA_DIR configure the
// deployment scale, host parallelism and the persistent dataset cache.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/exec/thread_pool.h"
#include "core/strings.h"
#include "granula/chrome_trace.h"
#include "experiments/plan.h"
#include "experiments/suite.h"
#include "harness/report.h"
#include "harness/results_db.h"
#include "harness/runner.h"
#include "store/snapshot.h"
#include "store/text_io.h"

namespace {

using ga::SplitCsv;

void PrintUsage(std::FILE* stream) {
  std::fprintf(
      stream,
      "usage: graphalytics_cli [mode] [options]\n"
      "\n"
      "modes:\n"
      "  run    (default) run a slice of the Graphalytics workload matrix\n"
      "         and print a result table (optionally a JSON database)\n"
      "  suite  run a declarative experiment plan reproducing the paper's\n"
      "         Section 4 evaluation (baseline, scalability, variability,\n"
      "         renewal) and emit a text report + experiments.json\n"
      "  data   dataset storage tooling (ga::store):\n"
      "           import  .v/.e text -> .gab binary snapshot\n"
      "                   --in PREFIX --out FILE.gab\n"
      "                   [--undirected] [--weighted] [--jobs N]\n"
      "           export  .gab snapshot -> .v/.e text\n"
      "                   --in FILE.gab --out PREFIX [--jobs N]\n"
      "           gen     generate a registry dataset into the snapshot\n"
      "                   cache and/or a file: --dataset ID\n"
      "                   [--data-dir DIR] [--out FILE.gab] [--jobs N]\n"
      "           inspect print a snapshot's header + section table\n"
      "                   --in FILE.gab\n"
      "           verify  full integrity check (checksums + structure)\n"
      "                   --in FILE.gab\n"
      "\n"
      "run options:\n"
      "  --platforms a,b,...   platform ids (default: all six)\n"
      "  --datasets X,Y,...    dataset ids (default: R1,R2,R3,R4)\n"
      "  --algorithms a,b,...  bfs,pr,wcc,cdlp,lcc,sssp (default: bfs,pr)\n"
      "  --machines N          simulated machines (default: 1)\n"
      "  --threads N           simulated threads per machine (default: 32)\n"
      "  --repetitions N       repetitions for variability (default: 1)\n"
      "  --jobs N              host threads for real execution\n"
      "                        (default: hardware concurrency; results\n"
      "                        and simulated metrics do not depend on N)\n"
      "  --data-dir DIR        persistent dataset cache: datasets load\n"
      "                        from .gab snapshots instead of being\n"
      "                        regenerated (populated on first use)\n"
      "  --out FILE            write the results database as JSON\n"
      "  --trace FILE          deep tracing: per-superstep spans +\n"
      "                        exec-layer counters, exported as a Chrome\n"
      "                        trace-event JSON (chrome://tracing /\n"
      "                        Perfetto); outputs and simulated metrics\n"
      "                        are unchanged (docs/OBSERVABILITY.md)\n"
      "\n"
      "suite options:\n"
      "  --plan NAME|FILE      preset (smoke, paper) or plan file\n"
      "                        (default: smoke; format in\n"
      "                        docs/BENCHMARK_GUIDE.md)\n"
      "  --jobs N              host threads, as above; the suite's report\n"
      "                        and JSON are bit-identical at any N\n"
      "  --data-dir DIR        persistent dataset cache, as above\n"
      "  --out FILE            write experiments.json\n"
      "  --report FILE         also write the text report to FILE\n"
      "  --trace FILE          deep tracing across the whole plan, one\n"
      "                        process group per cell in the exported\n"
      "                        Chrome trace; adds deterministic exec\n"
      "                        counters to experiments.json\n"
      "\n"
      "common:\n"
      "  --help                show this help\n"
      "\n"
      "environment: GA_SCALE_DIVISOR (default 1024), GA_SEED, GA_JOBS,\n"
      "GA_DATA_DIR\n");
}

/// Parses --jobs values: non-negative integer, 0 = hardware concurrency.
bool ParseJobs(const char* text, int* jobs) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (*text == '\0' || end == nullptr || *end != '\0' || errno == ERANGE ||
      value < 0 || value > std::numeric_limits<int>::max()) {
    std::fprintf(stderr,
                 "--jobs requires a non-negative integer, got \"%s\" "
                 "(0 = hardware)\n",
                 text);
    return false;
  }
  *jobs = static_cast<int>(value);
  return true;
}

/// Writes a complete document to `path` (used for the --trace export).
bool WriteFileOrComplain(const std::string& path,
                         const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing: %s\n", path.c_str(),
                 std::strerror(errno));
    return false;
  }
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const bool ok = written == content.size() && std::fclose(file) == 0;
  if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
  return ok;
}

int RunMode(const std::vector<std::string>& args) {
  std::vector<std::string> platforms = ga::platform::AllPlatformIds();
  std::vector<std::string> datasets = {"R1", "R2", "R3", "R4"};
  std::vector<std::string> algorithms = {"bfs", "pr"};
  int machines = 1;
  int threads = 32;
  int repetitions = 1;
  int jobs = -1;  // -1: keep GA_JOBS / hardware default
  std::string out_path;
  std::string data_dir;
  std::string trace_path;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : "";
    };
    if (arg == "--platforms") {
      platforms = SplitCsv(next());
    } else if (arg == "--datasets") {
      datasets = SplitCsv(next());
    } else if (arg == "--algorithms") {
      algorithms = SplitCsv(next());
    } else if (arg == "--machines") {
      machines = std::atoi(next());
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--repetitions") {
      repetitions = std::atoi(next());
    } else if (arg == "--jobs") {
      if (!ParseJobs(next(), &jobs)) return 2;
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  if (jobs >= 0) config.host_jobs = jobs;
  if (!data_dir.empty()) config.data_dir = data_dir;
  config.trace_enabled = !trace_path.empty();
  ga::harness::BenchmarkRunner runner(config);
  std::printf("host threads: %d\n",
              runner.host_pool() != nullptr
                  ? runner.host_pool()->num_threads()
                  : 1);
  if (!config.data_dir.empty()) {
    std::printf("dataset cache: %s\n", config.data_dir.c_str());
  }
  if (config.trace_enabled) {
    std::printf("deep tracing enabled -> %s\n", trace_path.c_str());
  }
  ga::harness::ResultsDatabase database(config);
  ga::granula::ChromeTraceBuilder trace_builder;
  std::size_t traced_jobs = 0;

  ga::harness::TextTable table(
      "benchmark run",
      {"platform", "dataset", "algorithm", "outcome", "T_proc", "EPS"});
  for (const std::string& dataset : datasets) {
    for (const std::string& algorithm_name : algorithms) {
      ga::Algorithm algorithm;
      if (!ga::ParseAlgorithm(algorithm_name, &algorithm)) {
        std::fprintf(stderr, "unknown algorithm %s\n",
                     algorithm_name.c_str());
        return 2;
      }
      for (const std::string& platform : platforms) {
        ga::harness::JobSpec job;
        job.platform_id = platform;
        job.dataset_id = dataset;
        job.algorithm = algorithm;
        job.num_machines = machines;
        job.threads_per_machine = threads;
        job.repetitions = repetitions;
        auto report = runner.Run(job);
        if (!report.ok()) {
          std::fprintf(stderr, "%s/%s/%s: %s\n", platform.c_str(),
                       dataset.c_str(), algorithm_name.c_str(),
                       report.status().ToString().c_str());
          continue;
        }
        database.Record(*report);
        if (report->archive != nullptr && report->archive->valid()) {
          trace_builder.AddJob(*report->archive, platform + "/" + dataset +
                                                     "/" + algorithm_name);
          ++traced_jobs;
        }
        table.AddRow(
            {platform, dataset, algorithm_name,
             std::string(ga::harness::JobOutcomeName(report->outcome)),
             report->completed()
                 ? ga::harness::FormatSeconds(report->tproc_seconds)
                 : "-",
             report->completed()
                 ? ga::harness::FormatThroughput(report->eps)
                 : "-"});
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("%zu jobs recorded, %zu completed\n", database.size(),
              database.Completed().size());

  if (!out_path.empty()) {
    ga::Status written = database.WriteJsonFile(out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("results database written to %s\n", out_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!WriteFileOrComplain(trace_path, trace_builder.Finish())) return 1;
    std::printf("chrome trace (%zu jobs) written to %s\n", traced_jobs,
                trace_path.c_str());
  }
  return 0;
}

int SuiteMode(const std::vector<std::string>& args) {
  std::string plan_name = "smoke";
  int jobs = -1;
  std::string out_path;
  std::string report_path;
  std::string data_dir;
  std::string trace_path;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : "";
    };
    if (arg == "--plan") {
      plan_name = next();
    } else if (arg == "--jobs") {
      if (!ParseJobs(next(), &jobs)) return 2;
    } else if (arg == "--data-dir") {
      data_dir = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--report") {
      report_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown suite flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  auto plan = ga::experiments::ResolvePlan(plan_name);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 2;
  }

  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  if (jobs >= 0) config.host_jobs = jobs;
  if (!data_dir.empty()) config.data_dir = data_dir;
  config.trace_enabled = !trace_path.empty();
  ga::harness::BenchmarkRunner runner(config);
  std::printf("host threads: %d\n",
              runner.host_pool() != nullptr
                  ? runner.host_pool()->num_threads()
                  : 1);
  if (!config.data_dir.empty()) {
    std::printf("dataset cache: %s\n", config.data_dir.c_str());
  }
  if (config.trace_enabled) {
    std::printf("deep tracing enabled -> %s\n", trace_path.c_str());
  }

  auto result = ga::experiments::RunSuite(runner, *plan);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%s", ga::experiments::RenderSuiteReport(*result).c_str());

  if (!out_path.empty()) {
    ga::Status written = ga::experiments::WriteSuiteJson(*result, out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("experiments database written to %s\n", out_path.c_str());
  }
  if (!report_path.empty()) {
    ga::Status written =
        ga::experiments::WriteSuiteReport(*result, report_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_path.c_str());
  }
  if (!trace_path.empty()) {
    ga::granula::ChromeTraceBuilder trace_builder;
    std::size_t traced_jobs = 0;
    for (std::size_t i = 0; i < result->reports.size(); ++i) {
      const ga::harness::JobReport& report = result->reports[i];
      if (report.archive == nullptr || !report.archive->valid()) continue;
      trace_builder.AddJob(*report.archive,
                           i < result->schedule.jobs.size()
                               ? result->schedule.jobs[i].cell_id
                               : report.spec.platform_id + "/" +
                                     report.spec.dataset_id);
      ++traced_jobs;
    }
    if (!WriteFileOrComplain(trace_path, trace_builder.Finish())) return 1;
    std::printf("chrome trace (%zu jobs) written to %s\n", traced_jobs,
                trace_path.c_str());
  }
  return 0;
}

// Shared flag state for the five `data` submodes.
struct DataArgs {
  std::string in;
  std::string out;
  std::string dataset;
  std::string data_dir;
  bool undirected = false;
  bool weighted = false;
  int jobs = -1;
};

// Outcome of parsing the flags of a `data` submode: proceed, exit
// successfully (--help), or exit with a usage error.
enum class DataParse { kOk, kHelp, kError };

DataParse ParseDataArgs(const std::vector<std::string>& args,
                        DataArgs* parsed) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : "";
    };
    if (arg == "--in") {
      parsed->in = next();
    } else if (arg == "--out") {
      parsed->out = next();
    } else if (arg == "--dataset") {
      parsed->dataset = next();
    } else if (arg == "--data-dir") {
      parsed->data_dir = next();
    } else if (arg == "--undirected") {
      parsed->undirected = true;
    } else if (arg == "--directed") {
      parsed->undirected = false;
    } else if (arg == "--weighted") {
      parsed->weighted = true;
    } else if (arg == "--jobs") {
      if (!ParseJobs(next(), &parsed->jobs)) return DataParse::kError;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return DataParse::kHelp;
    } else {
      std::fprintf(stderr, "unknown data flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return DataParse::kError;
    }
  }
  return DataParse::kOk;
}

int Fail(const ga::Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

void PrintGraphSummary(const ga::Graph& graph) {
  std::printf("graph: %lld vertices, %lld edges, %s, %s\n",
              static_cast<long long>(graph.num_vertices()),
              static_cast<long long>(graph.num_edges()),
              ga::DirectednessName(graph.directedness()).data(),
              graph.is_weighted() ? "weighted" : "unweighted");
}

int DataMode(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fprintf(stderr, "data mode requires a subcommand "
                         "(import|export|gen|inspect|verify)\n\n");
    PrintUsage(stderr);
    return 2;
  }
  const std::string sub = args[0];
  DataArgs parsed;
  switch (ParseDataArgs({args.begin() + 1, args.end()}, &parsed)) {
    case DataParse::kHelp:
      return 0;
    case DataParse::kError:
      return 2;
    case DataParse::kOk:
      break;
  }

  // The text codec and the graph build parallelise on a host pool;
  // data-mode results are byte-identical at any --jobs value. Default
  // (like run/suite): hardware concurrency.
  std::unique_ptr<ga::exec::ThreadPool> pool;
  const int pool_threads =
      parsed.jobs <= 0 ? ga::exec::ThreadPool::HardwareConcurrency()
                       : parsed.jobs;
  if (pool_threads > 1) {
    pool = std::make_unique<ga::exec::ThreadPool>(pool_threads);
  }

  if (sub == "import") {
    if (parsed.in.empty() || parsed.out.empty()) {
      std::fprintf(stderr,
                   "data import requires --in PREFIX and --out FILE.gab\n");
      return 2;
    }
    ga::store::ImportOptions options;
    options.directedness = parsed.undirected
                               ? ga::Directedness::kUndirected
                               : ga::Directedness::kDirected;
    options.weighted = parsed.weighted;
    options.pool = pool.get();
    auto graph = ga::store::ImportGraphText(parsed.in, options);
    if (!graph.ok()) return Fail(graph.status());
    PrintGraphSummary(*graph);
    ga::Status written = ga::store::WriteSnapshot(*graph, parsed.out);
    if (!written.ok()) return Fail(written);
    std::printf("snapshot written to %s\n", parsed.out.c_str());
    return 0;
  }
  if (sub == "export") {
    if (parsed.in.empty() || parsed.out.empty()) {
      std::fprintf(stderr,
                   "data export requires --in FILE.gab and --out PREFIX\n");
      return 2;
    }
    auto graph = ga::store::ReadSnapshot(parsed.in);
    if (!graph.ok()) return Fail(graph.status());
    PrintGraphSummary(*graph);
    ga::Status written =
        ga::store::ExportGraphText(*graph, parsed.out, pool.get());
    if (!written.ok()) return Fail(written);
    std::printf("text dataset written to %s.v / %s.e\n", parsed.out.c_str(),
                parsed.out.c_str());
    return 0;
  }
  if (sub == "gen") {
    ga::harness::BenchmarkConfig config =
        ga::harness::BenchmarkConfig::FromEnv();
    if (!parsed.data_dir.empty()) config.data_dir = parsed.data_dir;
    if (parsed.dataset.empty() ||
        (config.data_dir.empty() && parsed.out.empty())) {
      std::fprintf(stderr,
                   "data gen requires --dataset ID and at least one of "
                   "--data-dir DIR (or GA_DATA_DIR) / --out FILE.gab\n");
      return 2;
    }
    ga::harness::DatasetRegistry registry(config);  // Load fills the cache
    registry.set_host_pool(pool.get());
    auto graph = registry.Load(parsed.dataset);
    if (!graph.ok()) return Fail(graph.status());
    PrintGraphSummary(**graph);
    if (!config.data_dir.empty()) {
      // Load treats cache stores as best-effort; gen's whole purpose is
      // the cached file, so confirm it actually landed.
      auto snapshot_path = registry.SnapshotPathFor(parsed.dataset);
      if (!snapshot_path.ok()) return Fail(snapshot_path.status());
      ga::Status cached = ga::store::VerifySnapshot(*snapshot_path);
      if (!cached.ok()) return Fail(cached);
      std::printf("snapshot cached at %s\n", snapshot_path->c_str());
    }
    if (!parsed.out.empty()) {
      ga::Status written = ga::store::WriteSnapshot(**graph, parsed.out);
      if (!written.ok()) return Fail(written);
      std::printf("snapshot written to %s\n", parsed.out.c_str());
    }
    return 0;
  }
  if (sub == "inspect") {
    if (parsed.in.empty()) {
      std::fprintf(stderr, "data inspect requires --in FILE.gab\n");
      return 2;
    }
    auto info = ga::store::InspectSnapshot(parsed.in);
    if (!info.ok()) return Fail(info.status());
    const auto& header = info->header;
    std::printf("%s: .gab snapshot version %u\n", parsed.in.c_str(),
                header.version);
    std::printf("  %llu vertices, %llu edges, %s, %s\n",
                static_cast<unsigned long long>(header.num_vertices),
                static_cast<unsigned long long>(header.num_edges),
                (header.flags & ga::store::kFlagDirected) != 0
                    ? "directed"
                    : "undirected",
                (header.flags & ga::store::kFlagWeighted) != 0
                    ? "weighted"
                    : "unweighted");
    std::printf("  max out-degree %llu, max in-degree %llu, %llu bytes\n",
                static_cast<unsigned long long>(header.max_out_degree),
                static_cast<unsigned long long>(header.max_in_degree),
                static_cast<unsigned long long>(info->file_size));
    std::printf("  %-14s %12s %12s %18s\n", "section", "offset", "bytes",
                "checksum");
    for (const auto& section : info->sections) {
      std::printf("  %-14s %12llu %12llu   %016llx\n",
                  ga::store::SectionKindName(
                      static_cast<ga::store::SectionKind>(section.kind))
                      .data(),
                  static_cast<unsigned long long>(section.offset),
                  static_cast<unsigned long long>(section.size_bytes),
                  static_cast<unsigned long long>(section.checksum));
    }
    return 0;
  }
  if (sub == "verify") {
    if (parsed.in.empty()) {
      std::fprintf(stderr, "data verify requires --in FILE.gab\n");
      return 2;
    }
    ga::Status verified = ga::store::VerifySnapshot(parsed.in);
    if (!verified.ok()) return Fail(verified);
    std::printf("%s: OK (checksums and structure verified)\n",
                parsed.in.c_str());
    return 0;
  }
  std::fprintf(stderr,
               "unknown data subcommand \"%s\" "
               "(valid: import, export, gen, inspect, verify)\n\n",
               sub.c_str());
  PrintUsage(stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Normalise "--flag=value" to "--flag value" so both spellings work in
  // every mode.
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::size_t equals = arg.find('=');
      if (equals != std::string::npos) {
        args.push_back(arg.substr(0, equals));
        args.push_back(arg.substr(equals + 1));
        continue;
      }
    }
    args.push_back(arg);
  }

  // The first non-flag argument selects the mode; bare flags default to
  // the legacy "run" mode.
  if (!args.empty() && args[0].rfind("-", 0) != 0) {
    const std::string mode = args[0];
    args.erase(args.begin());
    if (mode == "run") return RunMode(args);
    if (mode == "suite") return SuiteMode(args);
    if (mode == "data") return DataMode(args);
    if (mode == "help") {
      PrintUsage(stdout);
      return 0;
    }
    std::fprintf(stderr,
                 "unknown mode \"%s\" (valid modes: run, suite, data)\n\n",
                 mode.c_str());
    PrintUsage(stderr);
    return 2;
  }
  return RunMode(args);
}
