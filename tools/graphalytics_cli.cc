// graphalytics_cli: the benchmark driver — runs a configurable slice of
// the Graphalytics workload matrix through the harness and writes a JSON
// results database, mirroring the real harness's property-driven runs
// ("the benchmark user may select a subset of the Graphalytics workload",
// paper Figure 1, component 2).
//
// Usage:
//   graphalytics_cli [--platforms a,b] [--datasets X,Y] [--algorithms ...]
//                    [--machines N] [--threads N] [--repetitions N]
//                    [--jobs N] [--out results.json]
// Defaults: all platforms, datasets R1..R4, algorithms bfs+pr, 1 machine.
// GA_SCALE_DIVISOR / GA_SEED / GA_JOBS configure the deployment scale and
// host parallelism.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/exec/thread_pool.h"
#include "harness/report.h"
#include "harness/results_db.h"
#include "harness/runner.h"

namespace {

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    if (comma > start) parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

void PrintUsage(std::FILE* stream) {
  std::fprintf(
      stream,
      "usage: graphalytics_cli [options]\n"
      "\n"
      "Runs a slice of the Graphalytics workload matrix through the\n"
      "harness and prints a result table (optionally a JSON database).\n"
      "\n"
      "options:\n"
      "  --platforms a,b,...   platform ids (default: all six)\n"
      "  --datasets X,Y,...    dataset ids (default: R1,R2,R3,R4)\n"
      "  --algorithms a,b,...  bfs,pr,wcc,cdlp,lcc,sssp (default: bfs,pr)\n"
      "  --machines N          simulated machines (default: 1)\n"
      "  --threads N           simulated threads per machine (default: 32)\n"
      "  --repetitions N       repetitions for variability (default: 1)\n"
      "  --jobs N              host threads for real execution\n"
      "                        (default: hardware concurrency; results\n"
      "                        and simulated metrics do not depend on N)\n"
      "  --out FILE            write the results database as JSON\n"
      "  --help                show this help\n"
      "\n"
      "environment: GA_SCALE_DIVISOR (default 1024), GA_SEED, GA_JOBS\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> platforms = ga::platform::AllPlatformIds();
  std::vector<std::string> datasets = {"R1", "R2", "R3", "R4"};
  std::vector<std::string> algorithms = {"bfs", "pr"};
  int machines = 1;
  int threads = 32;
  int repetitions = 1;
  int jobs = -1;  // -1: keep GA_JOBS / hardware default
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--platforms") {
      platforms = SplitCsv(next());
    } else if (arg == "--datasets") {
      datasets = SplitCsv(next());
    } else if (arg == "--algorithms") {
      algorithms = SplitCsv(next());
    } else if (arg == "--machines") {
      machines = std::atoi(next());
    } else if (arg == "--threads") {
      threads = std::atoi(next());
    } else if (arg == "--repetitions") {
      repetitions = std::atoi(next());
    } else if (arg == "--jobs") {
      const char* text = next();
      char* end = nullptr;
      const long value = std::strtol(text, &end, 10);
      if (*text == '\0' || end == nullptr || *end != '\0' || value < 0) {
        std::fprintf(stderr,
                     "--jobs requires a non-negative integer, got \"%s\" "
                     "(0 = hardware)\n",
                     text);
        return 2;
      }
      jobs = static_cast<int>(value);
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  ga::harness::BenchmarkConfig config =
      ga::harness::BenchmarkConfig::FromEnv();
  if (jobs >= 0) config.host_jobs = jobs;
  ga::harness::BenchmarkRunner runner(config);
  std::printf("host threads: %d\n",
              runner.host_pool() != nullptr
                  ? runner.host_pool()->num_threads()
                  : 1);
  ga::harness::ResultsDatabase database(config);

  ga::harness::TextTable table(
      "benchmark run",
      {"platform", "dataset", "algorithm", "outcome", "T_proc", "EPS"});
  for (const std::string& dataset : datasets) {
    for (const std::string& algorithm_name : algorithms) {
      ga::Algorithm algorithm;
      if (!ga::ParseAlgorithm(algorithm_name, &algorithm)) {
        std::fprintf(stderr, "unknown algorithm %s\n",
                     algorithm_name.c_str());
        return 2;
      }
      for (const std::string& platform : platforms) {
        ga::harness::JobSpec job;
        job.platform_id = platform;
        job.dataset_id = dataset;
        job.algorithm = algorithm;
        job.num_machines = machines;
        job.threads_per_machine = threads;
        job.repetitions = repetitions;
        auto report = runner.Run(job);
        if (!report.ok()) {
          std::fprintf(stderr, "%s/%s/%s: %s\n", platform.c_str(),
                       dataset.c_str(), algorithm_name.c_str(),
                       report.status().ToString().c_str());
          continue;
        }
        database.Record(*report);
        table.AddRow(
            {platform, dataset, algorithm_name,
             std::string(ga::harness::JobOutcomeName(report->outcome)),
             report->completed()
                 ? ga::harness::FormatSeconds(report->tproc_seconds)
                 : "-",
             report->completed()
                 ? ga::harness::FormatThroughput(report->eps)
                 : "-"});
      }
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("%zu jobs recorded, %zu completed\n", database.size(),
              database.Completed().size());

  if (!out_path.empty()) {
    ga::Status written = database.WriteJsonFile(out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("results database written to %s\n", out_path.c_str());
  }
  return 0;
}
