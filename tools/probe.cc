// Calibration probe (developer tool): prints the generated size, skew and
// memory-relevant statistics of every dataset at the configured scale
// divisor, followed by the stress-test pass/crash/timeout matrix (BFS on
// one machine) for every platform. Used to calibrate the cost-profile
// constants against the paper's Table 10; see DESIGN.md §5.
#include <cstdio>
#include "harness/runner.h"
#include "harness/scale.h"
using namespace ga;
using namespace ga::harness;
int main() {
  BenchmarkConfig config = BenchmarkConfig::FromEnv();
  BenchmarkRunner runner(config);
  std::printf("budget/machine: %lld bytes\n", (long long)config.ScaledMemoryBudget());
  for (const auto& spec : runner.registry().specs()) {
    auto graph = runner.registry().Load(spec.id);
    if (!graph.ok()) { std::printf("%s: LOAD FAIL %s\n", spec.id.c_str(), graph.status().ToString().c_str()); continue; }
    const Graph* g = *graph;
    std::printf("%-10s n=%-8lld m=%-8lld adj=%-8lld maxout=%-6lld maxin=%-6lld scale(paper)=%.1f\n",
      spec.id.c_str(), (long long)g->num_vertices(), (long long)g->num_edges(),
      (long long)g->num_adjacency_entries(), (long long)g->max_out_degree(), (long long)g->max_in_degree(), spec.paper_scale);
  }
  // Stress-test matrix: BFS on 1 machine over all datasets per platform.
  for (const auto& pid : platform::AllPlatformIds()) {
    std::printf("%-13s:", pid.c_str());
    for (const auto& spec : runner.registry().specs()) {
      JobSpec job{pid, spec.id, Algorithm::kBfs, 1, 32, 1, false};
      auto report = runner.Run(job);
      char mark = '?';
      if (report.ok()) {
        switch (report->outcome) {
          case JobOutcome::kCompleted: mark = '.'; break;
          case JobOutcome::kCrashed: mark = 'C'; break;
          case JobOutcome::kTimedOut: mark = 'T'; break;
          default: mark = 'F';
        }
      }
      std::printf(" %s=%c", spec.id.c_str(), mark);
    }
    std::printf("\n");
  }
  return 0;
}
