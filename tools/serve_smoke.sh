#!/usr/bin/env bash
# Serve-daemon smoke (docs/SERVING.md): start the daemon on a unix
# socket, drive a brief mixed load through a line-JSON client — clean
# runs, a validated run, one fault-injected request, a shed burst past
# the queue depth, a stats snapshot, and a telemetry scrape (the
# `metrics` op must return valid Prometheus text with nonzero stage
# histograms and shed counters; `top --frames 1` must render) — then
# SIGTERM the daemon and require a graceful drain: exit 0, drain summary
# printed, socket unlinked, and results + metrics logs whose every line
# parses.
#
# Usage: tools/serve_smoke.sh [path/to/graphalytics_cli]
set -u

CLI=${1:-./build/tools/graphalytics_cli}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SOCK="$WORK/serve.sock"
LOG="$WORK/daemon.log"
RESULTS="$WORK/results.jsonl"
METRICS="$WORK/metrics.jsonl"

GA_SCALE_DIVISOR=${GA_SCALE_DIVISOR:-4096} \
  "$CLI" serve --socket "$SOCK" --queue-depth 2 --workers 1 \
  --deadline-ms 60000 --results "$RESULTS" \
  --metrics-jsonl "$METRICS" --metrics-interval-ms 100 >"$LOG" 2>&1 &
DAEMON=$!

# Wait for the listener.
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK"; cat "$LOG"; exit 1; }

python3 - "$SOCK" <<'EOF' || { echo "FAIL: client"; kill "$DAEMON"; exit 1; }
import json, socket, sys

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
f = s.makefile("rw")

def send(obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()

def recv():
    return json.loads(f.readline())

# Clean run + validated run.
send({"op": "run", "id": "c1", "algorithm": "bfs", "dataset": "R1"})
r = recv(); assert r["status"] == "completed", r
assert len(r["output_fnv"]) == 16, r
send({"op": "run", "id": "c2", "algorithm": "pr", "dataset": "R1",
      "validate": True})
r = recv(); assert r["status"] == "completed" and r["validated"], r

# One fault-injected request: fails cleanly, daemon survives.
send({"op": "run", "id": "f1", "algorithm": "pr", "dataset": "R1",
      "faults": "crash_at_superstep=1,seed=7"})
r = recv(); assert r["status"] != "completed", r

# The daemon still serves identical results after the fault.
send({"op": "run", "id": "c3", "algorithm": "bfs", "dataset": "R1"})
r = recv(); assert r["status"] == "completed", r

# Burst past the queue depth: at least one request is shed with a
# retry-after hint (depth 2, one worker, 8 outstanding).
for i in range(8):
    send({"op": "run", "id": "burst-%d" % i, "algorithm": "bfs",
          "dataset": "R2"})
statuses = [recv() for _ in range(8)]
shed = [r for r in statuses if r["status"] == "shed"]
assert shed, statuses
assert all(r["retry_after_ms"] > 0 for r in shed), shed

send({"op": "stats"})
stats = recv()["stats"]
assert stats["completed"] >= 3, stats
assert stats["shed_arrivals"] + stats["shed_victims"] >= 1, stats
assert stats["faulted_requests"] == 1, stats
assert "stages" in stats and stats["stages"]["execute"]["count"] >= 3, stats
assert stats["service_ewma_ms"] > 0, stats

# Telemetry scrape: the metrics op returns Prometheus text format 0.0.4
# in the "body" field. Validate the syntax line by line, then require
# the core series with the counts this very load produced.
import re
send({"op": "metrics"})
body = recv()["body"]
assert body, "empty metrics body"
NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
sample_re = re.compile(
    r"^(%s)(\{[^{}]*\})? (-?[0-9.eE+]+|\+Inf|NaN)$" % NAME)
typed = set()
samples = {}
for line in body.splitlines():
    if not line:
        continue
    if line.startswith("# HELP "):
        continue
    if line.startswith("# TYPE "):
        parts = line.split()
        assert parts[3] in ("counter", "gauge", "histogram"), line
        typed.add(parts[2])
        continue
    m = sample_re.match(line)
    assert m, "bad exposition line: %r" % line
    samples[m.group(1) + (m.group(2) or "")] = float(m.group(3))
    base = re.sub(r"_(bucket|sum|count)$", "", m.group(1))
    assert m.group(1) in typed or base in typed, "untyped sample: " + line

def series(prefix):
    return {k: v for k, v in samples.items() if k.startswith(prefix)}

# Stage histograms saw the completed runs (nonzero counts).
execute_count = series('ga_serve_stage_seconds_count{stage="execute"}')
assert execute_count and all(v >= 3 for v in execute_count.values()), \
    execute_count
for stage in ("queue_wait", "load", "serialize"):
    sc = series('ga_serve_stage_seconds_count{stage="%s"}' % stage)
    assert sc and all(v >= 3 for v in sc.values()), (stage, sc)
# Cumulative buckets: the +Inf bucket closes each stage at its count.
inf = series('ga_serve_stage_seconds_bucket{stage="execute",le="+Inf"}')
assert list(inf.values()) == list(execute_count.values()), (inf, execute_count)
# The shed burst shows up in the admission counters.
shed_total = sum(series('ga_serve_admission_total{decision="shed"').values())
displaced = sum(
    series('ga_serve_admission_total{decision="displaced"').values())
assert shed_total + displaced >= 1, series("ga_serve_admission_total")
# Outcome counters and residency/gauge families are live.
assert samples['ga_serve_requests_total{outcome="completed"}'] >= 3, samples
assert sum(series('ga_serve_residency_total{event="miss"}').values()) >= 1
assert "ga_serve_resident_bytes" in samples, sorted(samples)[:20]
assert sum(series("ga_exec_chunks_total").values()) > 0, \
    series("ga_exec_chunks_total")
print("metrics scrape ok:", len(samples), "series")
print("client ok:", json.dumps(stats))
EOF

# The live fleet view renders one frame against the same daemon.
TOP=$("$CLI" top --socket "$SOCK" --frames 1 --no-clear) \
  || { echo "FAIL: top"; kill "$DAEMON"; exit 1; }
echo "$TOP" | grep -q "queue" || { echo "FAIL: top output: $TOP"; kill "$DAEMON"; exit 1; }

# Graceful drain on SIGTERM: exit 0, summary line, socket unlinked.
kill -TERM "$DAEMON"
wait "$DAEMON"
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: drain exit $status"; cat "$LOG"; exit 1
fi
grep -q "drained:" "$LOG" || { echo "FAIL: no drain summary"; cat "$LOG"; exit 1; }
[ -S "$SOCK" ] && { echo "FAIL: socket not unlinked"; exit 1; }

# Every record in the concurrent-append results log parses.
python3 - "$RESULTS" <<'EOF' || { echo "FAIL: results log"; exit 1; }
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty results log"
for line in lines:
    record = json.loads(line)
    assert "outcome" in record, record
print("results log ok:", len(lines), "records")
EOF

# Every periodic telemetry snapshot parses and carries both scopes.
python3 - "$METRICS" <<'EOF' || { echo "FAIL: metrics log"; exit 1; }
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty metrics log"
for line in lines:
    record = json.loads(line)
    assert "ts_ms" in record and "server" in record and "global" in record, \
        record
print("metrics log ok:", len(lines), "snapshots")
EOF

echo "PASS: serve smoke (drain exit 0, $(grep -c . "$RESULTS") records)"
