#!/usr/bin/env bash
# Serve-daemon smoke (docs/SERVING.md): start the daemon on a unix
# socket, drive a brief mixed load through a line-JSON client — clean
# runs, a validated run, one fault-injected request, a shed burst past
# the queue depth, and a stats snapshot — then SIGTERM the daemon and
# require a graceful drain: exit 0, drain summary printed, socket
# unlinked, and a results log whose every line parses.
#
# Usage: tools/serve_smoke.sh [path/to/graphalytics_cli]
set -u

CLI=${1:-./build/tools/graphalytics_cli}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
SOCK="$WORK/serve.sock"
LOG="$WORK/daemon.log"
RESULTS="$WORK/results.jsonl"

GA_SCALE_DIVISOR=${GA_SCALE_DIVISOR:-4096} \
  "$CLI" serve --socket "$SOCK" --queue-depth 2 --workers 1 \
  --deadline-ms 60000 --results "$RESULTS" >"$LOG" 2>&1 &
DAEMON=$!

# Wait for the listener.
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK"; cat "$LOG"; exit 1; }

python3 - "$SOCK" <<'EOF' || { echo "FAIL: client"; kill "$DAEMON"; exit 1; }
import json, socket, sys

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
f = s.makefile("rw")

def send(obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()

def recv():
    return json.loads(f.readline())

# Clean run + validated run.
send({"op": "run", "id": "c1", "algorithm": "bfs", "dataset": "R1"})
r = recv(); assert r["status"] == "completed", r
assert len(r["output_fnv"]) == 16, r
send({"op": "run", "id": "c2", "algorithm": "pr", "dataset": "R1",
      "validate": True})
r = recv(); assert r["status"] == "completed" and r["validated"], r

# One fault-injected request: fails cleanly, daemon survives.
send({"op": "run", "id": "f1", "algorithm": "pr", "dataset": "R1",
      "faults": "crash_at_superstep=1,seed=7"})
r = recv(); assert r["status"] != "completed", r

# The daemon still serves identical results after the fault.
send({"op": "run", "id": "c3", "algorithm": "bfs", "dataset": "R1"})
r = recv(); assert r["status"] == "completed", r

# Burst past the queue depth: at least one request is shed with a
# retry-after hint (depth 2, one worker, 8 outstanding).
for i in range(8):
    send({"op": "run", "id": "burst-%d" % i, "algorithm": "bfs",
          "dataset": "R2"})
statuses = [recv() for _ in range(8)]
shed = [r for r in statuses if r["status"] == "shed"]
assert shed, statuses
assert all(r["retry_after_ms"] > 0 for r in shed), shed

send({"op": "stats"})
stats = recv()["stats"]
assert stats["completed"] >= 3, stats
assert stats["shed_arrivals"] + stats["shed_victims"] >= 1, stats
assert stats["faulted_requests"] == 1, stats
print("client ok:", json.dumps(stats))
EOF

# Graceful drain on SIGTERM: exit 0, summary line, socket unlinked.
kill -TERM "$DAEMON"
wait "$DAEMON"
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: drain exit $status"; cat "$LOG"; exit 1
fi
grep -q "drained:" "$LOG" || { echo "FAIL: no drain summary"; cat "$LOG"; exit 1; }
[ -S "$SOCK" ] && { echo "FAIL: socket not unlinked"; exit 1; }

# Every record in the concurrent-append results log parses.
python3 - "$RESULTS" <<'EOF' || { echo "FAIL: results log"; exit 1; }
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "empty results log"
for line in lines:
    record = json.loads(line)
    assert "outcome" in record, record
print("results log ok:", len(lines), "records")
EOF

echo "PASS: serve smoke (drain exit 0, $(grep -c . "$RESULTS") records)"
